// Carry-save multi-operand addition (the CSA topology the paper's
// introduction names as a building block of DSP datapaths).
//
// A 3:2 compressor layer applies one adder cell per bit position with no
// carry propagation; layers are stacked until two vectors remain, which a
// ripple `AdderChain` then merges.  Using approximate cells in the
// compressors and/or the final chain models an approximate accumulation
// datapath (see examples/fir_filter.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/multibit/chain.hpp"

namespace sealpaa::multibit {

/// One 3:2 compression: returns {sum_vector, carry_vector} where
/// carry_vector is already shifted left by one position.  All vectors are
/// truncated to `width` bits (modular arithmetic).
struct CsaPair {
  std::uint64_t sum = 0;
  std::uint64_t carry = 0;
};
[[nodiscard]] CsaPair compress_3_2(std::uint64_t x, std::uint64_t y,
                                   std::uint64_t z,
                                   const adders::AdderCell& cell,
                                   std::size_t width) noexcept;

/// A multi-operand adder: CSA tree of `compressor` cells followed by a
/// final carry-propagate `merge` chain.
class CarrySaveAdder {
 public:
  CarrySaveAdder(adders::AdderCell compressor, AdderChain merge);

  /// Convenience: exact compressors with the given final merge chain.
  [[nodiscard]] static CarrySaveAdder with_exact_compressors(AdderChain merge);

  /// Sums all operands modulo 2^width (width = merge chain width).
  /// Zero operands sum to 0; one operand passes through truncated.
  [[nodiscard]] std::uint64_t accumulate(
      const std::vector<std::uint64_t>& operands) const;

  [[nodiscard]] std::size_t width() const noexcept { return merge_.width(); }
  [[nodiscard]] const adders::AdderCell& compressor() const noexcept {
    return compressor_;
  }
  [[nodiscard]] const AdderChain& merge_chain() const noexcept {
    return merge_;
  }

 private:
  adders::AdderCell compressor_;
  AdderChain merge_;
};

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/joint_profile.hpp"

#include <cmath>
#include <stdexcept>

namespace sealpaa::multibit {

namespace {

constexpr double kSlack = 1e-9;

JointBitDistribution validate(JointBitDistribution joint, std::size_t bit) {
  double total = 0.0;
  for (double& p : joint) {
    if (std::isnan(p) || p < -kSlack || p > 1.0 + kSlack) {
      throw std::domain_error(
          "JointInputProfile: bit " + std::to_string(bit) +
          " has an entry outside [0, 1]");
    }
    p = std::min(1.0, std::max(0.0, p));
    total += p;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    throw std::domain_error("JointInputProfile: bit " + std::to_string(bit) +
                            " distribution sums to " + std::to_string(total));
  }
  // Renormalise the residual rounding error.
  for (double& p : joint) p /= total;
  return joint;
}

}  // namespace

JointInputProfile::JointInputProfile(std::vector<JointBitDistribution> bits,
                                     double p_cin)
    : bits_(std::move(bits)) {
  if (bits_.empty() || bits_.size() > 63) {
    throw std::invalid_argument(
        "JointInputProfile: width must be in [1, 63]");
  }
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = validate(bits_[i], i);
  }
  p_cin_ = prob::require_probability(p_cin, "JointInputProfile P(Cin)");
}

JointInputProfile JointInputProfile::independent(const InputProfile& profile) {
  std::vector<JointBitDistribution> bits(profile.width());
  for (std::size_t i = 0; i < profile.width(); ++i) {
    const double pa = profile.p_a(i);
    const double pb = profile.p_b(i);
    bits[i] = {(1 - pa) * (1 - pb), (1 - pa) * pb, pa * (1 - pb), pa * pb};
  }
  return JointInputProfile(std::move(bits), profile.p_cin());
}

JointInputProfile JointInputProfile::correlated(const InputProfile& profile,
                                                double rho) {
  std::vector<JointBitDistribution> bits(profile.width());
  for (std::size_t i = 0; i < profile.width(); ++i) {
    const double pa = profile.p_a(i);
    const double pb = profile.p_b(i);
    const double cov =
        rho * std::sqrt(pa * (1 - pa) * pb * (1 - pb));
    const double p11 = pa * pb + cov;
    const double p10 = pa - p11;
    const double p01 = pb - p11;
    const double p00 = 1.0 - p11 - p10 - p01;
    // validate() rejects infeasible rho for these marginals.
    bits[i] = {p00, p01, p10, p11};
  }
  return JointInputProfile(std::move(bits), profile.p_cin());
}

double JointInputProfile::marginal_a(std::size_t i) const {
  const JointBitDistribution& j = bits_.at(i);
  return j[2] + j[3];
}

double JointInputProfile::marginal_b(std::size_t i) const {
  const JointBitDistribution& j = bits_.at(i);
  return j[1] + j[3];
}

double JointInputProfile::assignment_probability(std::uint64_t a,
                                                 std::uint64_t b,
                                                 bool cin) const {
  double probability = cin ? p_cin_ : 1.0 - p_cin_;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    const std::size_t idx = (((a >> i) & 1ULL) << 1) | ((b >> i) & 1ULL);
    probability *= bits_[i][idx];
  }
  return probability;
}

InputProfile::Sample JointInputProfile::sample(
    prob::Xoshiro256StarStar& rng) const {
  InputProfile::Sample s;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    const double u = rng.uniform01();
    double cumulative = 0.0;
    std::size_t pick = 3;
    for (std::size_t idx = 0; idx < 4; ++idx) {
      cumulative += bits_[i][idx];
      if (u < cumulative) {
        pick = idx;
        break;
      }
    }
    if (((pick >> 1) & 1U) != 0) s.a |= 1ULL << i;
    if ((pick & 1U) != 0) s.b |= 1ULL << i;
  }
  s.cin = rng.bernoulli(p_cin_);
  return s;
}

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/blocks.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sealpaa::multibit {
namespace {

constexpr int kMaxWidth = 62;

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("BlockChainSpec: " + message);
}

int parse_int(std::string_view text, const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(std::string("malformed ") + what + " '" + std::string(text) + "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = text.find(delimiter);
    if (pos == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

}  // namespace

BlockChainSpec::BlockChainSpec(std::vector<SubBlock> blocks)
    : blocks_(std::move(blocks)) {
  if (blocks_.empty()) fail("at least one block is required");
  result_starts_.reserve(blocks_.size() + 1);
  result_starts_.push_back(0);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const auto& block = blocks_[i];
    const int start = result_starts_.back();
    if (block.result_width < 1) fail("result width must be >= 1");
    if (block.prediction_width < 0) fail("prediction width must be >= 0");
    if (block.prediction_width > start) {
      fail("block " + std::to_string(i) + " prediction window of width " +
           std::to_string(block.prediction_width) +
           " reaches below bit 0 (starts at result bit " +
           std::to_string(start) + ")");
    }
    result_starts_.push_back(start + block.result_width);
  }
  n_ = result_starts_.back();
  if (n_ > kMaxWidth) {
    fail("total width " + std::to_string(n_) + " exceeds the supported " +
         std::to_string(kMaxWidth) + " bits");
  }
  // Reject pathological overlap up front: the analytical engines track
  // one carry bit per live window, so the joint state must stay small.
  for (int j = 0; j < n_; ++j) {
    int live = 0;
    for (int i = 1; i < block_count(); ++i) {
      if (window_start(i) <= j && j < result_end(i)) ++live;
    }
    if (live > kMaxLiveWindows) {
      fail("more than " + std::to_string(kMaxLiveWindows) +
           " prediction windows overlap at bit " + std::to_string(j));
    }
  }
}

BlockChainSpec BlockChainSpec::aca(int n, int k) {
  if (n < 1) fail("aca: n must be >= 1");
  if (k < 1 || k > n) fail("aca: need 1 <= K <= N");
  std::vector<SubBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(n) - static_cast<std::size_t>(k) +
                 1);
  // The first K result bits see their full carry history — one exact
  // K-bit leading block — then every further bit is its own block with
  // a (K-1)-bit window.
  blocks.push_back({k, 0});
  for (int j = k; j < n; ++j) blocks.push_back({1, k - 1});
  return BlockChainSpec(std::move(blocks));
}

BlockChainSpec BlockChainSpec::etaii(int n, int x) {
  if (n < 1) fail("etaii: n must be >= 1");
  if (x < 1) fail("etaii: X must be >= 1");
  std::vector<SubBlock> blocks;
  blocks.push_back({std::min(x, n), 0});
  for (int start = std::min(x, n); start < n; start += x) {
    blocks.push_back({std::min(x, n - start), x});
  }
  return BlockChainSpec(std::move(blocks));
}

BlockChainSpec BlockChainSpec::gear(int n, int r, int p) {
  if (r < 1) fail("gear: R must be >= 1");
  if (p < 0) fail("gear: P must be >= 0");
  if (n < r + p) fail("gear: need N >= R + P");
  std::vector<SubBlock> blocks;
  blocks.push_back({r + p, 0});
  for (int start = r + p; start < n; start += r) {
    // Ragged tail: the final sub-adder keeps its full L = R+P input
    // bits but produces only the remaining result bits.
    const int width = std::min(r, n - start);
    blocks.push_back({width, p + (r - width)});
  }
  return BlockChainSpec(std::move(blocks));
}

BlockChainSpec BlockChainSpec::parse(int n, std::string_view text) {
  if (text.empty()) fail("empty spec");
  const auto colon = text.find(':');
  const std::string_view head =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  const std::string_view rest =
      colon == std::string_view::npos ? std::string_view{}
                                      : text.substr(colon + 1);
  if (head == "aca") return aca(n, parse_int(rest, "aca K"));
  if (head == "etaii") return etaii(n, parse_int(rest, "etaii X"));
  if (head == "gear") {
    const auto parts = split(rest, ':');
    if (parts.size() != 2) fail("gear spec must be gear:R:P");
    return gear(n, parse_int(parts[0], "gear R"), parse_int(parts[1],
                                                            "gear P"));
  }
  std::string_view body = text;
  if (head == "hetero") body = rest;
  std::vector<SubBlock> blocks;
  for (const auto part : split(body, ',')) {
    const auto parts = split(part, ':');
    if (parts.size() != 2) {
      fail("block '" + std::string(part) + "' must be R:P");
    }
    blocks.push_back({parse_int(parts[0], "result width R"),
                      parse_int(parts[1], "prediction width P")});
  }
  BlockChainSpec spec{std::move(blocks)};
  if (spec.n() != n) {
    fail("block result widths sum to " + std::to_string(spec.n()) +
         " but the adder width is " + std::to_string(n));
  }
  return spec;
}

int BlockChainSpec::result_start(int i) const {
  return result_starts_.at(static_cast<std::size_t>(i));
}

int BlockChainSpec::result_end(int i) const {
  return result_starts_.at(static_cast<std::size_t>(i) + 1);
}

int BlockChainSpec::window_start(int i) const {
  return result_start(i) - block(i).prediction_width;
}

int BlockChainSpec::sub_adder_width(int i) const {
  const auto& b = block(i);
  return b.prediction_width + b.result_width;
}

int BlockChainSpec::producing_block(int j) const {
  if (j < 0 || j >= n_) {
    throw std::out_of_range("BlockChainSpec::producing_block: bit " +
                            std::to_string(j));
  }
  const auto it = std::upper_bound(result_starts_.begin(),
                                   result_starts_.end(), j);
  return static_cast<int>(it - result_starts_.begin()) - 1;
}

int BlockChainSpec::critical_path_bits() const noexcept {
  int widest = 0;
  for (int i = 0; i < block_count(); ++i) {
    widest = std::max(widest, sub_adder_width(i));
  }
  return widest;
}

std::string BlockChainSpec::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i > 0) out << ',';
    out << blocks_[i].result_width << ':' << blocks_[i].prediction_width;
  }
  return out.str();
}

std::string BlockChainSpec::describe() const {
  std::ostringstream out;
  out << "blocks[" << n_ << "]=" << to_string() << " L="
      << critical_path_bits() << " k=" << block_count();
  return out.str();
}

BlockAdder::BlockAdder(BlockChainSpec spec) : spec_(std::move(spec)) {}

AddResult BlockAdder::evaluate(std::uint64_t a, std::uint64_t b,
                               bool cin) const noexcept {
  std::uint64_t sum = 0;
  bool carry_out = false;
  for (int i = 0; i < spec_.block_count(); ++i) {
    const int first_result = spec_.result_start(i);
    const int end = spec_.result_end(i);
    bool carry = i == 0 && cin;
    for (int j = spec_.window_start(i); j < end; ++j) {
      const bool abit = (a >> j) & 1U;
      const bool bbit = (b >> j) & 1U;
      if (j >= first_result && (abit ^ bbit ^ carry)) {
        sum |= std::uint64_t{1} << j;
      }
      carry = (abit && bbit) || (carry && (abit || bbit));
    }
    if (i + 1 == spec_.block_count()) carry_out = carry;
  }
  return AddResult{sum, carry_out};
}

}  // namespace sealpaa::multibit

// Multi-bit ripple adder built from single-bit cells (Figure 3 of the
// paper).  A chain may be homogeneous (one cell type for every stage) or
// hybrid (per-stage cell choice, the design style the paper's §5
// recommends for exploiting per-bit input statistics).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sealpaa/adders/cell.hpp"

namespace sealpaa::multibit {

/// Result of evaluating a chain on concrete operands.
struct AddResult {
  std::uint64_t sum_bits = 0;  // the N sum bits
  bool carry_out = false;      // final carry-out

  /// Full numeric value including the carry-out as bit N.
  [[nodiscard]] std::uint64_t value(std::size_t width) const noexcept {
    return sum_bits | (static_cast<std::uint64_t>(carry_out) << width);
  }
};

/// Evaluation that additionally tracks the paper's per-stage success
/// event: stage i succeeds iff its (sum, carry) match the accurate full
/// adder *on the stage's actual inputs* (which include the possibly
/// corrupted incoming carry).
struct TracedAddResult {
  AddResult outputs;
  bool all_stages_success = true;
  int first_failed_stage = -1;  // -1 when fully successful
};

/// An N-stage ripple chain of adder cells (least significant stage first).
class AdderChain {
 public:
  /// Hybrid chain: one cell per stage.  Throws when `stages` is empty or
  /// wider than 63 bits (the bit-packed evaluator limit).
  explicit AdderChain(std::vector<adders::AdderCell> stages);

  /// Homogeneous chain of `width` copies of `cell`.
  [[nodiscard]] static AdderChain homogeneous(const adders::AdderCell& cell,
                                              std::size_t width);

  [[nodiscard]] std::size_t width() const noexcept { return stages_.size(); }
  [[nodiscard]] const adders::AdderCell& stage(std::size_t i) const {
    return stages_.at(i);
  }
  [[nodiscard]] const std::vector<adders::AdderCell>& stages() const noexcept {
    return stages_;
  }

  /// True when every stage uses the same truth table.
  [[nodiscard]] bool is_homogeneous() const noexcept;

  /// True when every stage is the accurate full adder.
  [[nodiscard]] bool is_exact() const noexcept;

  /// Short description, e.g. "8 x LPAA1" or "LPAA1|LPAA6|LPAA6|LPAA7".
  [[nodiscard]] std::string describe() const;

  /// Evaluates the chain on concrete operands (bits above `width()` are
  /// ignored).
  [[nodiscard]] AddResult evaluate(std::uint64_t a, std::uint64_t b,
                                   bool cin) const noexcept;

  /// Evaluates while tracking the per-stage success event (paper §4).
  [[nodiscard]] TracedAddResult evaluate_traced(std::uint64_t a,
                                                std::uint64_t b,
                                                bool cin) const noexcept;

 private:
  std::vector<adders::AdderCell> stages_;
};

/// Exact N-bit addition in the same output format (reference model).
[[nodiscard]] AddResult exact_add(std::uint64_t a, std::uint64_t b, bool cin,
                                  std::size_t width) noexcept;

/// Masks `value` down to `width` bits.
[[nodiscard]] constexpr std::uint64_t mask_width(std::uint64_t value,
                                                 std::size_t width) noexcept {
  return width >= 64 ? value : value & ((1ULL << width) - 1ULL);
}

}  // namespace sealpaa::multibit

// LOA — the Lower-part OR Adder (Mahdiani et al.), a classic low-power
// segmented approximate adder from the same design lineage as the
// paper's LPAA cells ([6]'s IMPACT family cites it as prior art).
//
// The l least-significant sum bits are computed as a_i OR b_i with no
// carry chain at all; the upper N-l bits use an exact adder whose
// carry-in is a_{l-1} AND b_{l-1} (a one-gate carry prediction).  This
// is a *topology-level* approximation rather than a cell-level one, so
// it exercises the library's analysis machinery on a structure the
// paper's per-cell M/K/L method does not directly cover — the exact
// error probability falls out of the same joint-carry DP style in O(N).
#pragma once

#include <cstdint>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::multibit {

/// Functional LOA model.
class LoaAdder {
 public:
  /// `width` total bits, `approx_lsbs` OR-approximated low bits
  /// (0 <= approx_lsbs <= width; 0 means fully exact).
  LoaAdder(std::size_t width, std::size_t approx_lsbs);

  /// Evaluates a + b (no external carry-in, as in the original design).
  [[nodiscard]] AddResult evaluate(std::uint64_t a,
                                   std::uint64_t b) const noexcept;

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t approx_lsbs() const noexcept {
    return approx_lsbs_;
  }

 private:
  std::size_t width_;
  std::size_t approx_lsbs_;
};

/// Exact value-level analysis of an LOA under per-bit probabilities.
struct LoaAnalysis {
  /// P(LOA output != exact sum), final carry-out included.
  double p_error = 0.0;
  /// P(some sum bit differs), carry-out ignored.
  double p_error_sum_only = 0.0;
};

/// O(N) dynamic program over (exact carry, predicted carry, still-equal)
/// — no simulation, any input profile (carry-in fixed to 0 by the
/// topology; profile.p_cin() is ignored).
[[nodiscard]] LoaAnalysis analyze_loa(const LoaAdder& adder,
                                      const InputProfile& profile);

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/csa.hpp"

#include "sealpaa/adders/builtin.hpp"

namespace sealpaa::multibit {

CsaPair compress_3_2(std::uint64_t x, std::uint64_t y, std::uint64_t z,
                     const adders::AdderCell& cell,
                     std::size_t width) noexcept {
  CsaPair out;
  for (std::size_t i = 0; i < width; ++i) {
    const bool xb = ((x >> i) & 1ULL) != 0;
    const bool yb = ((y >> i) & 1ULL) != 0;
    const bool zb = ((z >> i) & 1ULL) != 0;
    const adders::BitPair bits = cell.output(xb, yb, zb);
    out.sum |= static_cast<std::uint64_t>(bits.sum) << i;
    if (i + 1 < width) {
      out.carry |= static_cast<std::uint64_t>(bits.carry) << (i + 1);
    }
  }
  return out;
}

CarrySaveAdder::CarrySaveAdder(adders::AdderCell compressor, AdderChain merge)
    : compressor_(std::move(compressor)), merge_(std::move(merge)) {}

CarrySaveAdder CarrySaveAdder::with_exact_compressors(AdderChain merge) {
  return CarrySaveAdder(adders::accurate(), std::move(merge));
}

std::uint64_t CarrySaveAdder::accumulate(
    const std::vector<std::uint64_t>& operands) const {
  const std::size_t w = width();
  std::vector<std::uint64_t> pending;
  pending.reserve(operands.size());
  for (std::uint64_t value : operands) pending.push_back(mask_width(value, w));

  while (pending.size() > 2) {
    std::vector<std::uint64_t> next;
    next.reserve(pending.size() * 2 / 3 + 2);
    std::size_t i = 0;
    for (; i + 2 < pending.size(); i += 3) {
      const CsaPair pair = compress_3_2(pending[i], pending[i + 1],
                                        pending[i + 2], compressor_, w);
      next.push_back(pair.sum);
      next.push_back(pair.carry);
    }
    for (; i < pending.size(); ++i) next.push_back(pending[i]);
    pending = std::move(next);
  }

  if (pending.empty()) return 0;
  if (pending.size() == 1) return pending.front();
  return mask_width(merge_.evaluate(pending[0], pending[1], false).sum_bits, w);
}

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/input_profile.hpp"

#include <stdexcept>

namespace sealpaa::multibit {

InputProfile::InputProfile(std::vector<double> p_a, std::vector<double> p_b,
                           double p_cin)
    : p_a_(std::move(p_a)), p_b_(std::move(p_b)) {
  if (p_a_.empty() || p_a_.size() != p_b_.size()) {
    throw std::invalid_argument(
        "InputProfile: operand probability vectors must be nonempty and of "
        "equal size");
  }
  if (p_a_.size() > 63) {
    throw std::invalid_argument(
        "InputProfile: widths above 63 bits are not supported by the "
        "bit-packed evaluators");
  }
  for (double& p : p_a_) p = prob::require_probability(p, "InputProfile P(A)");
  for (double& p : p_b_) p = prob::require_probability(p, "InputProfile P(B)");
  p_cin_ = prob::require_probability(p_cin, "InputProfile P(Cin)");
}

InputProfile InputProfile::uniform(std::size_t width, double p) {
  return uniform_with_cin(width, p, p);
}

InputProfile InputProfile::uniform_with_cin(std::size_t width,
                                            double p_operands, double p_cin) {
  return InputProfile(std::vector<double>(width, p_operands),
                      std::vector<double>(width, p_operands), p_cin);
}

InputProfile InputProfile::random(std::size_t width,
                                  prob::Xoshiro256StarStar& rng, double lo,
                                  double hi) {
  const auto draw = [&] { return lo + (hi - lo) * rng.uniform01(); };
  std::vector<double> a(width);
  std::vector<double> b(width);
  for (std::size_t i = 0; i < width; ++i) {
    a[i] = draw();
    b[i] = draw();
  }
  return InputProfile(std::move(a), std::move(b), draw());
}

bool InputProfile::is_uniform(double p) const noexcept {
  if (p_cin_ != p) return false;
  for (std::size_t i = 0; i < width(); ++i) {
    if (p_a_[i] != p || p_b_[i] != p) return false;
  }
  return true;
}

double InputProfile::assignment_probability(std::uint64_t a, std::uint64_t b,
                                            bool cin) const {
  double probability = cin ? p_cin_ : 1.0 - p_cin_;
  for (std::size_t i = 0; i < width(); ++i) {
    const bool a_bit = ((a >> i) & 1ULL) != 0;
    const bool b_bit = ((b >> i) & 1ULL) != 0;
    probability *= a_bit ? p_a_[i] : 1.0 - p_a_[i];
    probability *= b_bit ? p_b_[i] : 1.0 - p_b_[i];
  }
  return probability;
}

InputProfile::Sample InputProfile::sample(prob::Xoshiro256StarStar& rng) const {
  Sample s;
  for (std::size_t i = 0; i < width(); ++i) {
    if (rng.bernoulli(p_a_[i])) s.a |= 1ULL << i;
    if (rng.bernoulli(p_b_[i])) s.b |= 1ULL << i;
  }
  s.cin = rng.bernoulli(p_cin_);
  return s;
}

}  // namespace sealpaa::multibit

// Block-based approximate adder topology: sub-adders with truncated
// carry prediction (Wu et al., "Error Statistics of Block-based
// Approximate Adders", arXiv:1703.03522; Farahmand et al.,
// "Heterogeneous Block-Based Approximate Adder", arXiv:2106.08800).
//
// An N-bit block adder is a partition of the result bits into k blocks.
// Block i contributes R_i result bits starting at s_i = R_0 + ... +
// R_{i-1}; its sub-adder additionally consumes the P_i operand bits
// just below s_i as a carry-prediction window, with the sub-adder's
// carry-in hardwired to 0 (block 0 sees the adder's real carry-in and
// needs no prediction, so P_0 = 0).  The carry chain is cut to
// max(P_i + R_i) bits — the latency win — and block i's result is wrong
// exactly when the predicted carry into s_i differs from the true
// carry: the true carry into s_i - P_i was 1 and every prediction bit
// propagates.
//
// GeAr(N, R, P), ACA(N, K) and ETAII(N, X) are the uniform special
// cases; arbitrary per-block (R_i, P_i) lists are the heterogeneous
// generalization this type exists to represent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sealpaa/multibit/chain.hpp"

namespace sealpaa::multibit {

/// One sub-adder of a block-based approximate adder.
struct SubBlock {
  int result_width = 0;      // R_i >= 1: result bits this block produces
  int prediction_width = 0;  // P_i >= 0: speculative carry window below

  friend bool operator==(const SubBlock&, const SubBlock&) = default;
};

/// A validated heterogeneous block-adder configuration.
class BlockChainSpec {
 public:
  /// Largest tracked prediction-window overlap: at most this many block
  /// windows may be live at one bit position (bounds the joint-carry
  /// state of the analytical engines at 2^(1 + kMaxLiveWindows)).
  static constexpr int kMaxLiveWindows = 12;

  /// Validates and adopts the block list.  Throws std::invalid_argument
  /// unless every R_i >= 1, every P_i >= 0, P_0 == 0, each window stays
  /// inside the operand (P_i <= s_i), the total width is in [1, 62]
  /// (the error-PMF carry-out fold needs 2^N representable as int64)
  /// and no bit position is covered by more than kMaxLiveWindows
  /// prediction windows.
  explicit BlockChainSpec(std::vector<SubBlock> blocks);

  /// Almost Correct Adder ACA(N, K): every result bit sees a K-bit
  /// carry window — N single-bit blocks with P = K-1 (clipped near the
  /// LSB where fewer than K-1 bits exist below).
  [[nodiscard]] static BlockChainSpec aca(int n, int k);

  /// ETAII(N, X): X-bit result segments, each with an X-bit
  /// carry-lookahead window (final segment clipped to the remaining
  /// width).
  [[nodiscard]] static BlockChainSpec etaii(int n, int x);

  /// GeAr(N, R, P): one leading (R+P)-bit block, then R-bit blocks with
  /// P-bit prediction windows.  Unlike the classic (N-L) % R == 0
  /// tiling this accepts any N >= R+P: a ragged tail becomes a final
  /// block of fewer result bits with a correspondingly *larger*
  /// prediction window (the sub-adder keeps its L = R+P bits).
  [[nodiscard]] static BlockChainSpec gear(int n, int r, int p);

  /// Parses a CLI/JSON spec for an `n`-bit adder.  Accepted forms:
  ///   "R:P,R:P,..."  explicit heterogeneous block list (LSB first;
  ///                  result widths must sum to n)
  ///   "aca:K"        ACA(n, K)
  ///   "etaii:X"      ETAII(n, X)
  ///   "gear:R:P"     GeAr(n, R, P)
  ///   "hetero:R:P,..."  explicit list, spelled-out family name
  /// Throws std::invalid_argument on malformed text or width mismatch.
  [[nodiscard]] static BlockChainSpec parse(int n, std::string_view text);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int block_count() const noexcept {
    return static_cast<int>(blocks_.size());
  }
  [[nodiscard]] const std::vector<SubBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const SubBlock& block(int i) const {
    return blocks_.at(static_cast<std::size_t>(i));
  }

  /// First result bit of block `i` (s_i).
  [[nodiscard]] int result_start(int i) const;
  /// One past the last result bit of block `i`.
  [[nodiscard]] int result_end(int i) const;
  /// First operand bit the sub-adder of block `i` consumes
  /// (s_i - P_i).
  [[nodiscard]] int window_start(int i) const;
  /// Sub-adder width of block `i` (P_i + R_i).
  [[nodiscard]] int sub_adder_width(int i) const;
  /// Index of the block whose result region contains bit `j`.
  [[nodiscard]] int producing_block(int j) const;

  /// Longest sub-adder (the carry-chain latency proxy).
  [[nodiscard]] int critical_path_bits() const noexcept;
  /// True when the spec is a single full-width block (an exact adder).
  [[nodiscard]] bool is_exact() const noexcept {
    return blocks_.size() == 1;
  }

  /// Canonical "R:P,R:P,..." form — parse(n, to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;
  /// Human-readable summary, e.g. "blocks[16]=8:0,4:4,4:4 L=8 k=3".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const BlockChainSpec&,
                         const BlockChainSpec&) = default;

 private:
  std::vector<SubBlock> blocks_;
  std::vector<int> result_starts_;  // prefix sums, size k+1 (last == n)
  int n_ = 0;
};

/// Functional block-adder model — the simulation oracle the analytical
/// engines are validated against.  Sub-adders are exact ripple adders
/// over their windows with carry-in 0 (block 0 receives `cin`).
class BlockAdder {
 public:
  explicit BlockAdder(BlockChainSpec spec);

  /// Evaluates the block adder on concrete operands (bits above n()
  /// ignored).  The returned carry-out is the last sub-adder's carry.
  [[nodiscard]] AddResult evaluate(std::uint64_t a, std::uint64_t b,
                                   bool cin = false) const noexcept;

  [[nodiscard]] const BlockChainSpec& spec() const noexcept { return spec_; }

 private:
  BlockChainSpec spec_;
};

}  // namespace sealpaa::multibit

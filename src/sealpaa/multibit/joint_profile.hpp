// Correlated-operand input model.
//
// The paper (§4) assumes all operand bits are statistically independent.
// Real datapaths often violate that *across operands at the same bit
// position* (e.g. adding a signal to a delayed copy of itself).  The
// recursion does not actually need independence between A_i and B_i —
// only a per-stage joint distribution P(A_i, B_i) — so this profile
// stores the four joint probabilities per bit and the analysis layer
// consumes them directly (see analysis/correlated.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"

namespace sealpaa::multibit {

/// Joint distribution of one operand-bit pair: index (a << 1) | b.
using JointBitDistribution = std::array<double, 4>;

/// Per-bit joint operand distributions plus the carry-in probability.
/// Bits at different positions remain independent (as in the paper);
/// only the A_i/B_i pairing is generalized.
class JointInputProfile {
 public:
  /// Explicit joint distributions; each must be non-negative and sum to
  /// 1 (within rounding slack), validated on construction.
  JointInputProfile(std::vector<JointBitDistribution> bits, double p_cin);

  /// Independent product model — reproduces a plain InputProfile.
  [[nodiscard]] static JointInputProfile independent(
      const InputProfile& profile);

  /// Per-bit marginals with a common Pearson correlation `rho` between
  /// A_i and B_i.  The feasible rho range depends on the marginals; out
  /// of range joints throw std::domain_error.  rho = 0 reduces to the
  /// independent model; rho = 1 with equal marginals makes A_i = B_i.
  [[nodiscard]] static JointInputProfile correlated(
      const InputProfile& profile, double rho);

  [[nodiscard]] std::size_t width() const noexcept { return bits_.size(); }
  [[nodiscard]] const JointBitDistribution& joint(std::size_t i) const {
    return bits_.at(i);
  }
  [[nodiscard]] double p_cin() const noexcept { return p_cin_; }

  /// Marginal P(A_i = 1) / P(B_i = 1).
  [[nodiscard]] double marginal_a(std::size_t i) const;
  [[nodiscard]] double marginal_b(std::size_t i) const;

  /// Probability of a full input assignment.
  [[nodiscard]] double assignment_probability(std::uint64_t a,
                                              std::uint64_t b,
                                              bool cin) const;

  /// Draws one input assignment (for Monte Carlo validation).
  [[nodiscard]] InputProfile::Sample sample(
      prob::Xoshiro256StarStar& rng) const;

 private:
  std::vector<JointBitDistribution> bits_;
  double p_cin_ = 0.0;
};

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/chain.hpp"

#include <sstream>
#include <stdexcept>

namespace sealpaa::multibit {

AdderChain::AdderChain(std::vector<adders::AdderCell> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("AdderChain: at least one stage required");
  }
  if (stages_.size() > 63) {
    throw std::invalid_argument(
        "AdderChain: widths above 63 bits are not supported");
  }
}

AdderChain AdderChain::homogeneous(const adders::AdderCell& cell,
                                   std::size_t width) {
  return AdderChain(std::vector<adders::AdderCell>(width, cell));
}

bool AdderChain::is_homogeneous() const noexcept {
  for (const adders::AdderCell& cell : stages_) {
    if (!(cell == stages_.front())) return false;
  }
  return true;
}

bool AdderChain::is_exact() const noexcept {
  for (const adders::AdderCell& cell : stages_) {
    if (!cell.is_exact()) return false;
  }
  return true;
}

std::string AdderChain::describe() const {
  if (is_homogeneous()) {
    std::ostringstream out;
    out << width() << " x " << stages_.front().name();
    return out.str();
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out << '|';
    out << stages_[i].name();
  }
  return out.str();
}

AddResult AdderChain::evaluate(std::uint64_t a, std::uint64_t b,
                               bool cin) const noexcept {
  AddResult result;
  bool carry = cin;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const bool a_bit = ((a >> i) & 1ULL) != 0;
    const bool b_bit = ((b >> i) & 1ULL) != 0;
    const adders::BitPair out = stages_[i].output(a_bit, b_bit, carry);
    result.sum_bits |= static_cast<std::uint64_t>(out.sum) << i;
    carry = out.carry;
  }
  result.carry_out = carry;
  return result;
}

TracedAddResult AdderChain::evaluate_traced(std::uint64_t a, std::uint64_t b,
                                            bool cin) const noexcept {
  TracedAddResult traced;
  bool carry = cin;
  const adders::AdderCell::Rows& exact_rows =
      adders::AdderCell::accurate_rows();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const bool a_bit = ((a >> i) & 1ULL) != 0;
    const bool b_bit = ((b >> i) & 1ULL) != 0;
    const std::size_t row = adders::AdderCell::row_index(a_bit, b_bit, carry);
    const adders::BitPair out = stages_[i].rows()[row];
    if (traced.all_stages_success && !(out == exact_rows[row])) {
      traced.all_stages_success = false;
      traced.first_failed_stage = static_cast<int>(i);
    }
    traced.outputs.sum_bits |= static_cast<std::uint64_t>(out.sum) << i;
    carry = out.carry;
  }
  traced.outputs.carry_out = carry;
  return traced;
}

AddResult exact_add(std::uint64_t a, std::uint64_t b, bool cin,
                    std::size_t width) noexcept {
  const std::uint64_t total =
      mask_width(a, width) + mask_width(b, width) + (cin ? 1ULL : 0ULL);
  AddResult result;
  result.sum_bits = mask_width(total, width);
  result.carry_out = ((total >> width) & 1ULL) != 0;
  return result;
}

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/loa.hpp"

#include <array>
#include <stdexcept>

namespace sealpaa::multibit {

LoaAdder::LoaAdder(std::size_t width, std::size_t approx_lsbs)
    : width_(width), approx_lsbs_(approx_lsbs) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("LoaAdder: width must be in [1, 63]");
  }
  if (approx_lsbs > width) {
    throw std::invalid_argument("LoaAdder: approx_lsbs must be <= width");
  }
}

AddResult LoaAdder::evaluate(std::uint64_t a, std::uint64_t b) const noexcept {
  a = mask_width(a, width_);
  b = mask_width(b, width_);
  AddResult result;

  const std::uint64_t low_mask =
      approx_lsbs_ == 0 ? 0ULL : ((1ULL << approx_lsbs_) - 1ULL);
  result.sum_bits = (a | b) & low_mask;

  const bool predicted_carry =
      approx_lsbs_ > 0 &&
      ((a >> (approx_lsbs_ - 1)) & 1ULL) != 0 &&
      ((b >> (approx_lsbs_ - 1)) & 1ULL) != 0;

  if (approx_lsbs_ == width_) {
    result.carry_out = predicted_carry;
    return result;
  }

  const std::uint64_t upper_a = a >> approx_lsbs_;
  const std::uint64_t upper_b = b >> approx_lsbs_;
  const std::size_t upper_width = width_ - approx_lsbs_;
  const AddResult upper =
      exact_add(upper_a, upper_b, predicted_carry, upper_width);
  result.sum_bits |= upper.sum_bits << approx_lsbs_;
  result.carry_out = upper.carry_out;
  return result;
}

LoaAnalysis analyze_loa(const LoaAdder& adder, const InputProfile& profile) {
  if (profile.width() != adder.width()) {
    throw std::invalid_argument("analyze_loa: profile width must match");
  }
  const std::size_t n = adder.width();
  const std::size_t l = adder.approx_lsbs();

  const auto ab_weights = [&](std::size_t i) {
    const double pa = profile.p_a(i);
    const double pb = profile.p_b(i);
    return std::array<double, 4>{(1 - pa) * (1 - pb), (1 - pa) * pb,
                                 pa * (1 - pb), pa * pb};
  };

  // ---- Lower phase: state (exact carry << 1 | still-equal). ----
  std::array<double, 4> lower{};
  lower[(0U << 1) | 1U] = 1.0;  // exact carry 0, all bits equal so far

  // ---- Upper phase: state (ce << 2 | c_loa << 1 | eq). ----
  std::array<double, 8> upper{};

  for (std::size_t i = 0; i < l; ++i) {
    const std::array<double, 4> ab = ab_weights(i);
    std::array<double, 4> next_lower{};
    for (std::size_t s = 0; s < 4; ++s) {
      if (lower[s] == 0.0) continue;
      const bool ce = (s & 2U) != 0;
      const bool eq = (s & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const bool loa_sum = a || b;
        const bool exact_sum = a != b ? !ce : ce;
        const bool eq2 = eq && (loa_sum == exact_sum);
        const bool ce2 = (static_cast<int>(a) + static_cast<int>(b) +
                          static_cast<int>(ce)) >= 2;
        const double w = lower[s] * ab[abi];
        if (i + 1 == l) {
          // Boundary: the predicted carry is a AND b of this bit.
          const bool c_loa = a && b;
          upper[(static_cast<std::size_t>(ce2) << 2) |
                (static_cast<std::size_t>(c_loa) << 1) |
                static_cast<std::size_t>(eq2)] += w;
        } else {
          next_lower[(static_cast<std::size_t>(ce2) << 1) |
                     static_cast<std::size_t>(eq2)] += w;
        }
      }
    }
    if (i + 1 != l) lower = next_lower;
  }
  if (l == 0) {
    // Fully exact: both carries start at 0 and the adder is exact.
    upper[(0U << 2) | (0U << 1) | 1U] = 1.0;
  }

  for (std::size_t i = l; i < n; ++i) {
    const std::array<double, 4> ab = ab_weights(i);
    std::array<double, 8> next{};
    for (std::size_t s = 0; s < 8; ++s) {
      if (upper[s] == 0.0) continue;
      const bool ce = (s & 4U) != 0;
      const bool cl = (s & 2U) != 0;
      // Sum bits at this position are equal iff the carries agree (both
      // halves use exact cells above the boundary).
      const bool eq = ((s & 1U) != 0) && (ce == cl);
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const bool ce2 = (static_cast<int>(a) + static_cast<int>(b) +
                          static_cast<int>(ce)) >= 2;
        const bool cl2 = (static_cast<int>(a) + static_cast<int>(b) +
                          static_cast<int>(cl)) >= 2;
        next[(static_cast<std::size_t>(ce2) << 2) |
             (static_cast<std::size_t>(cl2) << 1) |
             static_cast<std::size_t>(eq)] += upper[s] * ab[abi];
      }
    }
    upper = next;
  }

  LoaAnalysis analysis;
  double ok_sum_only = 0.0;
  double ok_with_carry = 0.0;
  for (std::size_t s = 0; s < 8; ++s) {
    const bool ce = (s & 4U) != 0;
    const bool cl = (s & 2U) != 0;
    const bool eq = (s & 1U) != 0;
    if (!eq) continue;
    ok_sum_only += upper[s];
    if (ce == cl) ok_with_carry += upper[s];
  }
  analysis.p_error_sum_only = 1.0 - ok_sum_only;
  analysis.p_error = 1.0 - ok_with_carry;
  return analysis;
}

}  // namespace sealpaa::multibit

// Per-bit input probability profile of a multi-bit adder.
//
// The paper's method takes P(A_i), P(B_i) for every operand bit and
// P(Cin) for the first stage, all statistically independent (paper §4).
#pragma once

#include <cstddef>
#include <vector>

#include "sealpaa/prob/probability.hpp"
#include "sealpaa/prob/rng.hpp"

namespace sealpaa::multibit {

/// Probabilities that each operand bit / the input carry equals 1.
class InputProfile {
 public:
  /// Builds a profile from explicit per-bit probabilities.  Both vectors
  /// must have the same nonzero size; all values validated into [0,1].
  InputProfile(std::vector<double> p_a, std::vector<double> p_b,
               double p_cin);

  /// All operand bits and the carry share one probability `p`
  /// ("equally probable" scenarios of the paper).
  [[nodiscard]] static InputProfile uniform(std::size_t width, double p);

  /// Uniform operands with a distinct carry-in probability.
  [[nodiscard]] static InputProfile uniform_with_cin(std::size_t width,
                                                     double p_operands,
                                                     double p_cin);

  /// Random profile (each probability uniform in (lo, hi)); used by
  /// property tests to cross-validate engines.
  [[nodiscard]] static InputProfile random(std::size_t width,
                                           prob::Xoshiro256StarStar& rng,
                                           double lo = 0.0, double hi = 1.0);

  [[nodiscard]] std::size_t width() const noexcept { return p_a_.size(); }
  [[nodiscard]] double p_a(std::size_t i) const { return p_a_.at(i); }
  [[nodiscard]] double p_b(std::size_t i) const { return p_b_.at(i); }
  [[nodiscard]] double p_cin() const noexcept { return p_cin_; }

  [[nodiscard]] const std::vector<double>& all_p_a() const noexcept {
    return p_a_;
  }
  [[nodiscard]] const std::vector<double>& all_p_b() const noexcept {
    return p_b_;
  }

  /// True when every operand bit and the carry have probability exactly `p`.
  [[nodiscard]] bool is_uniform(double p) const noexcept;

  /// Probability of a *specific* full input assignment (operands `a`, `b`
  /// and carry `cin` as bit vectors / flag), assuming independence.
  /// Used by the weighted-exhaustive ground-truth engine.
  [[nodiscard]] double assignment_probability(std::uint64_t a, std::uint64_t b,
                                              bool cin) const;

  /// Draws a random input assignment for Monte Carlo simulation.
  struct Sample {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool cin = false;
  };
  [[nodiscard]] Sample sample(prob::Xoshiro256StarStar& rng) const;

 private:
  std::vector<double> p_a_;
  std::vector<double> p_b_;
  double p_cin_ = 0.0;
};

}  // namespace sealpaa::multibit

// Workload-driven input-profile estimation.
//
// The paper's method takes per-bit probabilities as given ("for a
// predetermined probability of input bits", abstract).  In practice
// those probabilities come from measuring a representative operand
// trace of the target application.  This module estimates both the
// independent (marginal) profile and the correlated (per-bit joint)
// profile from a trace of operand pairs, closing the loop:
//   workload trace -> profile -> analytical P(E) -> compare with the
//   error rate measured on the same trace.
#pragma once

#include <cstdint>
#include <vector>

#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/multibit/joint_profile.hpp"

namespace sealpaa::multibit {

/// One observed operand pair of a workload trace.
struct OperandSample {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Estimates per-bit marginals P(A_i = 1), P(B_i = 1) from the trace
/// (carry-in probability supplied separately — traces rarely carry it).
/// Throws std::invalid_argument on an empty trace.
[[nodiscard]] InputProfile estimate_profile(
    const std::vector<OperandSample>& trace, std::size_t width,
    double p_cin = 0.0);

/// Estimates the per-bit joint distribution P(A_i, B_i) from the trace,
/// capturing operand correlation the marginal profile discards.  With
/// `laplace_smoothing` > 0 each of the four cells per bit starts with
/// that pseudo-count (avoids hard zeros from short traces).
[[nodiscard]] JointInputProfile estimate_joint_profile(
    const std::vector<OperandSample>& trace, std::size_t width,
    double p_cin = 0.0, double laplace_smoothing = 0.0);

/// Empirical per-bit Pearson correlation between A_i and B_i (0 when a
/// bit is constant in the trace).  Diagnostic for deciding whether the
/// correlated analysis is warranted.
[[nodiscard]] std::vector<double> operand_correlation(
    const std::vector<OperandSample>& trace, std::size_t width);

}  // namespace sealpaa::multibit

#include "sealpaa/multibit/profile_estimation.hpp"

#include <cmath>
#include <stdexcept>

namespace sealpaa::multibit {

namespace {

void require_trace(const std::vector<OperandSample>& trace,
                   std::size_t width) {
  if (trace.empty()) {
    throw std::invalid_argument("profile estimation: empty trace");
  }
  if (width < 1 || width > 63) {
    throw std::invalid_argument(
        "profile estimation: width must be in [1, 63]");
  }
}

}  // namespace

InputProfile estimate_profile(const std::vector<OperandSample>& trace,
                              std::size_t width, double p_cin) {
  require_trace(trace, width);
  std::vector<double> p_a(width, 0.0);
  std::vector<double> p_b(width, 0.0);
  for (const OperandSample& sample : trace) {
    for (std::size_t i = 0; i < width; ++i) {
      p_a[i] += static_cast<double>((sample.a >> i) & 1ULL);
      p_b[i] += static_cast<double>((sample.b >> i) & 1ULL);
    }
  }
  const double n = static_cast<double>(trace.size());
  for (std::size_t i = 0; i < width; ++i) {
    p_a[i] /= n;
    p_b[i] /= n;
  }
  return InputProfile(std::move(p_a), std::move(p_b), p_cin);
}

JointInputProfile estimate_joint_profile(
    const std::vector<OperandSample>& trace, std::size_t width, double p_cin,
    double laplace_smoothing) {
  require_trace(trace, width);
  if (laplace_smoothing < 0.0) {
    throw std::invalid_argument(
        "estimate_joint_profile: smoothing must be non-negative");
  }
  std::vector<JointBitDistribution> bits(
      width, JointBitDistribution{laplace_smoothing, laplace_smoothing,
                                  laplace_smoothing, laplace_smoothing});
  for (const OperandSample& sample : trace) {
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t idx =
          (((sample.a >> i) & 1ULL) << 1) | ((sample.b >> i) & 1ULL);
      bits[i][idx] += 1.0;
    }
  }
  const double n =
      static_cast<double>(trace.size()) + 4.0 * laplace_smoothing;
  for (JointBitDistribution& joint : bits) {
    for (double& p : joint) p /= n;
  }
  return JointInputProfile(std::move(bits), p_cin);
}

std::vector<double> operand_correlation(
    const std::vector<OperandSample>& trace, std::size_t width) {
  require_trace(trace, width);
  const JointInputProfile joint = estimate_joint_profile(trace, width);
  std::vector<double> rho(width, 0.0);
  for (std::size_t i = 0; i < width; ++i) {
    const double pa = joint.marginal_a(i);
    const double pb = joint.marginal_b(i);
    const double denominator =
        std::sqrt(pa * (1 - pa) * pb * (1 - pb));
    if (denominator == 0.0) continue;
    const double p11 = joint.joint(i)[3];
    rho[i] = (p11 - pa * pb) / denominator;
  }
  return rho;
}

}  // namespace sealpaa::multibit

// The paper's M, K, L analysis matrices (Table 5) derived from a cell's
// truth table (§4.2 steps 1-3):
//   m_i = 1  iff  row i has Cout = 1 AND the row is a success,
//   k_i = 1  iff  row i has Cout = 0 AND the row is a success,
//   l_i = 1  iff  row i is a success (hence L = M + K).
#pragma once

#include <array>
#include <string>

#include "sealpaa/adders/cell.hpp"

namespace sealpaa::analysis {

/// One 1x8 selection vector (stored as doubles so dot products with the
/// input-probability matrix need no conversions).
using Vector8 = std::array<double, 8>;

/// The three constant matrices of a cell; derive once, reuse for any
/// adder width (§4.2 step 3).
struct MklMatrices {
  Vector8 m{};
  Vector8 k{};
  Vector8 l{};

  /// Derives M/K/L from the truth table of `cell`.
  [[nodiscard]] static MklMatrices from_cell(const adders::AdderCell& cell);

  /// Renders one vector like the paper: "[0,0,0,1,0,1,1,1]".
  [[nodiscard]] static std::string render(const Vector8& v);
};

/// Dot product of two 1x8 vectors (Equations 11/12).
[[nodiscard]] constexpr double dot(const Vector8& a,
                                   const Vector8& b) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Joint probability mass of carry-in and prefix success:
///   c1 = P(C_curr = 1 ∩ Succ),  c0 = P(C_curr = 0 ∩ Succ).
/// These two numbers are the paper's key sufficient statistic.
struct CarryState {
  double c0 = 0.0;
  double c1 = 0.0;

  /// Total still-successful probability mass (monotone non-increasing
  /// across stages because error rows are discarded).
  [[nodiscard]] double success_mass() const noexcept { return c0 + c1; }
};

/// Builds the 1x8 Input Probability Matrix of Equation 10 for one stage:
/// entry at index (A<<2 | B<<1 | C) is P(A-literal).P(B-literal).P(C-joint).
[[nodiscard]] constexpr Vector8 input_probability_matrix(
    double p_a, double p_b, const CarryState& carry) noexcept {
  const double na = 1.0 - p_a;
  const double nb = 1.0 - p_b;
  const std::array<double, 4> ab = {na * nb, na * p_b, p_a * nb, p_a * p_b};
  Vector8 ipm{};
  for (std::size_t i = 0; i < 4; ++i) {
    ipm[2 * i] = ab[i] * carry.c0;
    ipm[2 * i + 1] = ab[i] * carry.c1;
  }
  return ipm;
}

}  // namespace sealpaa::analysis

// Resource accounting of the proposed method (paper Table 8) and the
// closed-form cost of this implementation, for comparison against the
// measured counts of an instrumented run and against the traditional
// inclusion-exclusion blow-up (Table 3, in sealpaa/baseline).
#pragma once

#include <cstdint>

#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/op_counter.hpp"

namespace sealpaa::analysis {

/// Scalar-resource counts in the paper's accounting style.
struct ResourceCounts {
  std::uint64_t multipliers = 0;
  std::uint64_t adders = 0;
  std::uint64_t memory_units = 0;
};

/// Table 8 left column: operand bits equally probable.  The paper counts
/// 32 multipliers / 21 adders per iteration with 3 memory units (the two
/// carry-state scalars plus the success mass), one iteration per bit.
[[nodiscard]] ResourceCounts paper_model_equal_probabilities();

/// Table 8 right column: per-bit operand probabilities.  48 multipliers /
/// 21 adders per iteration; memory holds the per-bit inputs, hence
/// N + 1 units.
[[nodiscard]] ResourceCounts paper_model_varying_probabilities(int n_bits);

/// Closed-form cost of *this* implementation for an N-bit homogeneous
/// chain of `cell`: per advanced stage 12 multiplications + 2 complement
/// subtractions + (ones(M)-1)+(ones(K)-1) additions; the final stage
/// costs 12 multiplications + 2 subtractions + (ones(L)-1) additions.
[[nodiscard]] util::OpCounts implementation_model(const adders::AdderCell& cell,
                                                  std::size_t n_bits);

/// Runs the recursion with instrumentation and returns the measured
/// counts (must equal `implementation_model` for homogeneous chains —
/// checked in tests).
[[nodiscard]] util::OpCounts measure_recursive(
    const multibit::AdderChain& chain,
    const multibit::InputProfile& profile);

}  // namespace sealpaa::analysis

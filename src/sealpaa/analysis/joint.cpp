#include "sealpaa/analysis/joint.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"

namespace sealpaa::analysis {

namespace {

// State index for the 16-state DP: (ca << 3) | (ce << 2) | (eq << 1) | succ
// where ca/ce are the approximate/exact carries, eq = "all sum bits so far
// equal", succ = "all stages so far matched the accurate FA".
constexpr std::size_t state_index(bool ca, bool ce, bool eq,
                                  bool succ) noexcept {
  return (static_cast<std::size_t>(ca) << 3) |
         (static_cast<std::size_t>(ce) << 2) |
         (static_cast<std::size_t>(eq) << 1) | static_cast<std::size_t>(succ);
}

using State16 = std::array<double, 16>;
using Joint4 = std::array<double, 4>;  // index (ca << 1) | ce

constexpr std::size_t joint_index(bool ca, bool ce) noexcept {
  return (static_cast<std::size_t>(ca) << 1) | static_cast<std::size_t>(ce);
}

// Probability of each (a, b) operand-bit combination at one stage.
std::array<double, 4> ab_weights(double p_a, double p_b) noexcept {
  const double na = 1.0 - p_a;
  const double nb = 1.0 - p_b;
  return {na * nb, na * p_b, p_a * nb, p_a * p_b};
}

// Signed sum-bit difference d = s_approx - s_exact for one stage given
// operand bits and both carries.
int sum_difference(const adders::AdderCell& cell, bool a, bool b, bool ca,
                   bool ce) noexcept {
  const bool s_approx = cell.output(a, b, ca).sum;
  const bool s_exact =
      adders::AdderCell::accurate_rows()[adders::AdderCell::row_index(
          a, b, ce)].sum;
  return static_cast<int>(s_approx) - static_cast<int>(s_exact);
}

void check_widths(const multibit::AdderChain& chain,
                  const multibit::InputProfile& profile) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "JointCarryAnalyzer: chain and profile widths differ");
  }
}

}  // namespace

double ErrorMoments::rms() const noexcept { return std::sqrt(second_moment); }

JointResult JointCarryAnalyzer::analyze(
    const multibit::AdderChain& chain,
    const multibit::InputProfile& profile) {
  check_widths(chain, profile);
  const std::size_t n = chain.width();
  const adders::AdderCell::Rows& exact = adders::AdderCell::accurate_rows();

  State16 state{};
  state[state_index(true, true, true, true)] = profile.p_cin();
  state[state_index(false, false, true, true)] = 1.0 - profile.p_cin();

  for (std::size_t i = 0; i < n; ++i) {
    const adders::AdderCell& cell = chain.stage(i);
    const std::array<double, 4> ab = ab_weights(profile.p_a(i),
                                                profile.p_b(i));
    State16 next{};
    for (std::size_t s = 0; s < state.size(); ++s) {
      const double mass = state[s];
      if (mass == 0.0) continue;
      const bool ca = (s & 8U) != 0;
      const bool ce = (s & 4U) != 0;
      const bool eq = (s & 2U) != 0;
      const bool succ = (s & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const std::size_t approx_row = adders::AdderCell::row_index(a, b, ca);
        const std::size_t exact_row = adders::AdderCell::row_index(a, b, ce);
        const adders::BitPair approx_out = cell.rows()[approx_row];
        const adders::BitPair exact_out = exact[exact_row];
        const bool eq2 = eq && (approx_out.sum == exact_out.sum);
        const bool succ2 = succ && (approx_out == exact[approx_row]);
        next[state_index(approx_out.carry, exact_out.carry, eq2, succ2)] +=
            mass * ab[abi];
      }
    }
    state = next;
  }

  JointResult result;
  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  for (std::size_t s = 0; s < state.size(); ++s) {
    const bool ca = (s & 8U) != 0;
    const bool ce = (s & 4U) != 0;
    const bool eq = (s & 2U) != 0;
    const bool succ = (s & 1U) != 0;
    if (succ) stage_success.add(state[s]);
    if (eq && ca == ce) value_correct.add(state[s]);
    if (eq) sum_bits_correct.add(state[s]);
  }
  result.p_stage_success = stage_success.value();
  result.p_value_correct = value_correct.value();
  result.p_sum_bits_correct = sum_bits_correct.value();
  return result;
}

ErrorMoments JointCarryAnalyzer::moments(
    const multibit::AdderChain& chain,
    const multibit::InputProfile& profile) {
  check_widths(chain, profile);
  const std::size_t n = chain.width();
  const adders::AdderCell::Rows& exact = adders::AdderCell::accurate_rows();

  // Transition of the plain joint carry distribution at stage i.
  const auto advance = [&](const Joint4& joint, std::size_t i) {
    const adders::AdderCell& cell = chain.stage(i);
    const std::array<double, 4> ab = ab_weights(profile.p_a(i),
                                                profile.p_b(i));
    Joint4 next{};
    for (std::size_t j = 0; j < 4; ++j) {
      if (joint[j] == 0.0) continue;
      const bool ca = (j & 2U) != 0;
      const bool ce = (j & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const bool ca2 = cell.output(a, b, ca).carry;
        const bool ce2 =
            exact[adders::AdderCell::row_index(a, b, ce)].carry;
        next[joint_index(ca2, ce2)] += joint[j] * ab[abi];
      }
    }
    return next;
  };

  // E[d_i | entry distribution `joint`] and the signed measure of d_i
  // pushed through stage i (for covariances).
  const auto stage_d_mean = [&](const Joint4& joint, std::size_t i) {
    const adders::AdderCell& cell = chain.stage(i);
    const std::array<double, 4> ab = ab_weights(profile.p_a(i),
                                                profile.p_b(i));
    double mean = 0.0;
    double mean_sq = 0.0;
    Joint4 pushed{};  // signed measure E[d_i ; next carries]
    for (std::size_t j = 0; j < 4; ++j) {
      if (joint[j] == 0.0) continue;
      const bool ca = (j & 2U) != 0;
      const bool ce = (j & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const int d = sum_difference(cell, a, b, ca, ce);
        const double w = joint[j] * ab[abi];
        mean += w * d;
        mean_sq += w * d * d;
        if (d != 0) {
          const bool ca2 = cell.output(a, b, ca).carry;
          const bool ce2 =
              exact[adders::AdderCell::row_index(a, b, ce)].carry;
          pushed[joint_index(ca2, ce2)] += w * d;
        }
      }
    }
    struct Out {
      double mean;
      double mean_sq;
      Joint4 pushed;
    };
    return Out{mean, mean_sq, pushed};
  };

  // Expected d_j against a (possibly signed) entry measure.
  const auto d_against = [&](const Joint4& measure, std::size_t j) {
    const adders::AdderCell& cell = chain.stage(j);
    const std::array<double, 4> ab = ab_weights(profile.p_a(j),
                                                profile.p_b(j));
    double acc = 0.0;
    for (std::size_t s = 0; s < 4; ++s) {
      if (measure[s] == 0.0) continue;
      const bool ca = (s & 2U) != 0;
      const bool ce = (s & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        acc += measure[s] * ab[abi] *
               sum_difference(cell, a, b, ca, ce);
      }
    }
    return acc;
  };

  // Push a signed measure through stage j without weighting by d_j.
  const auto push_measure = [&](const Joint4& measure, std::size_t j) {
    const adders::AdderCell& cell = chain.stage(j);
    const std::array<double, 4> ab = ab_weights(profile.p_a(j),
                                                profile.p_b(j));
    Joint4 next{};
    for (std::size_t s = 0; s < 4; ++s) {
      if (measure[s] == 0.0) continue;
      const bool ca = (s & 2U) != 0;
      const bool ce = (s & 1U) != 0;
      for (std::size_t abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2U) != 0;
        const bool b = (abi & 1U) != 0;
        const bool ca2 = cell.output(a, b, ca).carry;
        const bool ce2 =
            exact[adders::AdderCell::row_index(a, b, ce)].carry;
        next[joint_index(ca2, ce2)] += measure[s] * ab[abi];
      }
    }
    return next;
  };

  // Entry joint distribution of every stage.
  std::vector<Joint4> entry(n + 1);
  entry[0] = Joint4{};
  entry[0][joint_index(false, false)] = 1.0 - profile.p_cin();
  entry[0][joint_index(true, true)] = profile.p_cin();
  for (std::size_t i = 0; i < n; ++i) entry[i + 1] = advance(entry[i], i);

  const double weight_carry = std::pow(2.0, static_cast<double>(n));

  prob::KahanSum mean_sum;
  prob::KahanSum second_sum;

  // Per-stage first moments and diagonal second moments.
  std::vector<double> d_mean(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto out = stage_d_mean(entry[i], i);
    d_mean[i] = out.mean;
    const double w = std::pow(2.0, static_cast<double>(i));
    mean_sum.add(w * out.mean);
    second_sum.add(w * w * out.mean_sq);
  }

  // Final carry difference moments.
  const Joint4& final_joint = entry[n];
  double dc_mean = 0.0;
  double dc_sq = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    const int ca = (s & 2U) != 0 ? 1 : 0;
    const int ce = (s & 1U) != 0 ? 1 : 0;
    const int dc = ca - ce;
    dc_mean += final_joint[s] * dc;
    dc_sq += final_joint[s] * dc * dc;
  }
  mean_sum.add(weight_carry * dc_mean);
  second_sum.add(weight_carry * weight_carry * dc_sq);

  // Cross terms E[d_i d_j] (i < j) and E[d_i * dc].
  for (std::size_t i = 0; i < n; ++i) {
    Joint4 measure = stage_d_mean(entry[i], i).pushed;
    const double wi = std::pow(2.0, static_cast<double>(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      const double wj = std::pow(2.0, static_cast<double>(j));
      second_sum.add(2.0 * wi * wj * d_against(measure, j));
      measure = push_measure(measure, j);
    }
    double cross_carry = 0.0;
    for (std::size_t s = 0; s < 4; ++s) {
      const int ca = (s & 2U) != 0 ? 1 : 0;
      const int ce = (s & 1U) != 0 ? 1 : 0;
      cross_carry += measure[s] * (ca - ce);
    }
    second_sum.add(2.0 * wi * weight_carry * cross_carry);
  }

  ErrorMoments moments;
  moments.mean = mean_sum.value();
  moments.second_moment = second_sum.value();
  return moments;
}

}  // namespace sealpaa::analysis

#include "sealpaa/analysis/bounds.hpp"

#include <stdexcept>

#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/prob/probability.hpp"

namespace sealpaa::analysis {

int max_cascadable_width(const adders::AdderCell& cell, double p,
                         double epsilon, int cap) {
  if (cap < 1 || cap > 63) {
    throw std::invalid_argument("max_cascadable_width: cap must be in [1,63]");
  }
  (void)prob::require_probability(p, "max_cascadable_width p");
  const MklMatrices mkl = MklMatrices::from_cell(cell);
  CarryState carry{1.0 - p, p};
  int best = 0;
  for (int width = 1; width <= cap; ++width) {
    // P(Succ) for this width uses the current carry state through the
    // final L-dot; then advance for the next width.
    const double p_success = final_success(mkl, p, p, carry);
    if (1.0 - p_success <= epsilon) {
      best = width;
    } else {
      // Monotone in width: once exceeded, longer chains are worse.
      break;
    }
    carry = advance_stage(mkl, p, p, carry);
  }
  return best;
}

int max_approximate_lsbs(const adders::AdderCell& cell, std::size_t width,
                         double p, double epsilon) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument(
        "max_approximate_lsbs: width must be in [1, 63]");
  }
  (void)prob::require_probability(p, "max_approximate_lsbs p");
  const MklMatrices mkl = MklMatrices::from_cell(cell);
  // Exact upper stages preserve the success mass, so the hybrid's
  // P(Error) is 1 - success_mass after the k approximate stages (or the
  // final L-dot when k == width).
  CarryState carry{1.0 - p, p};
  int best = 0;
  for (std::size_t k = 1; k <= width; ++k) {
    const double p_success = k == width
                                 ? final_success(mkl, p, p, carry)
                                 : (carry = advance_stage(mkl, p, p, carry),
                                    carry.success_mass());
    if (1.0 - p_success <= epsilon) {
      best = static_cast<int>(k);
    } else {
      break;
    }
  }
  return best;
}

}  // namespace sealpaa::analysis

#include "sealpaa/analysis/correlated.hpp"

#include <stdexcept>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::analysis {

AnalysisResult CorrelatedAnalyzer::analyze(
    const multibit::AdderChain& chain,
    const multibit::JointInputProfile& profile,
    const AnalyzeOptions& options) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "CorrelatedAnalyzer: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  CarryState carry{1.0 - profile.p_cin(), profile.p_cin()};
  if (options.counter != nullptr) options.counter->note_live(3);

  AnalysisResult result;
  if (options.record_trace) result.trace.reserve(n);

  MklMatrices cached = MklMatrices::from_cell(chain.stage(0));
  const adders::AdderCell* cached_for = &chain.stage(0);

  for (std::size_t i = 0; i < n; ++i) {
    const adders::AdderCell& cell = chain.stage(i);
    if (&cell != cached_for && !(cell == *cached_for)) {
      cached = MklMatrices::from_cell(cell);
      cached_for = &cell;
    }
    const Vector8 ipm =
        joint_input_probability_matrix(profile.joint(i), carry);
    if (options.counter != nullptr) options.counter->count_mul(8);

    if (i + 1 == n) {
      result.p_success = prob::require_probability(
          dot(ipm, cached.l), "CorrelatedAnalyzer P(Succ)");
    }
    const CarryState next{dot(ipm, cached.k), dot(ipm, cached.m)};
    if (options.record_trace) {
      result.trace.push_back(StageTrace{profile.marginal_a(i),
                                        profile.marginal_b(i), carry, next});
    }
    carry = next;
  }
  result.final_carry = carry;
  result.p_error = 1.0 - result.p_success;
  return result;
}

double CorrelatedAnalyzer::error_probability(
    const adders::AdderCell& cell,
    const multibit::JointInputProfile& profile) {
  return analyze(multibit::AdderChain::homogeneous(cell, profile.width()),
                 profile)
      .p_error;
}

}  // namespace sealpaa::analysis

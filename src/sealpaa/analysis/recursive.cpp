#include "sealpaa/analysis/recursive.hpp"

#include <cassert>
#include <stdexcept>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::analysis {

namespace {

// Counts the arithmetic of building one IPM: two complements (subtract),
// 4 operand products + 8 carry products = 12 multiplications.
void count_ipm(util::OpCounter* counter) {
  if (counter == nullptr) return;
  counter->count_add(2);   // 1-P(A), 1-P(B)
  counter->count_mul(12);  // 4 a*b products, then x c0/c1 for 8 entries
}

// Counts a selective dot product with a 0/1 vector holding `ones` ones.
void count_dot(util::OpCounter* counter, int ones) {
  if (counter == nullptr) return;
  if (ones > 1) counter->count_add(static_cast<std::uint64_t>(ones - 1));
}

int count_ones(const Vector8& v) {
  int ones = 0;
  for (double x : v) ones += (x != 0.0) ? 1 : 0;
  return ones;
}

}  // namespace

CarryState advance_stage(const MklMatrices& mkl, double p_a, double p_b,
                         const CarryState& carry, util::OpCounter* counter) {
  const Vector8 ipm = input_probability_matrix(p_a, p_b, carry);
  count_ipm(counter);
  CarryState next;
  next.c1 = dot(ipm, mkl.m);
  next.c0 = dot(ipm, mkl.k);
  count_dot(counter, count_ones(mkl.m));
  count_dot(counter, count_ones(mkl.k));
  if (counter != nullptr) {
    // Live scalars: the carry pair plus the running success mass.
    counter->note_live(3);
  }
  // Discarding error rows can only shrink the success mass.
  assert(next.success_mass() <= carry.success_mass() + prob::kProbabilitySlack);
  return next;
}

double final_success(const MklMatrices& mkl, double p_a, double p_b,
                     const CarryState& carry, util::OpCounter* counter) {
  const Vector8 ipm = input_probability_matrix(p_a, p_b, carry);
  count_ipm(counter);
  count_dot(counter, count_ones(mkl.l));
  return dot(ipm, mkl.l);
}

AnalysisResult RecursiveAnalyzer::analyze(const multibit::AdderChain& chain,
                                          const multibit::InputProfile& profile,
                                          const AnalyzeOptions& options) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "RecursiveAnalyzer: chain width " + std::to_string(chain.width()) +
        " does not match profile width " + std::to_string(profile.width()));
  }
  const std::size_t n = chain.width();

  // Initial state (Equation 5): the input carry is always "successful".
  CarryState carry{1.0 - profile.p_cin(), profile.p_cin()};
  if (options.counter != nullptr) options.counter->note_live(3);

  AnalysisResult result;
  if (options.record_trace) result.trace.reserve(n);

  // Cache M/K/L per distinct cell; for homogeneous chains this derives
  // the matrices exactly once.
  MklMatrices cached = MklMatrices::from_cell(chain.stage(0));
  const adders::AdderCell* cached_for = &chain.stage(0);

  for (std::size_t i = 0; i < n; ++i) {
    const adders::AdderCell& cell = chain.stage(i);
    if (&cell != cached_for && !(cell == *cached_for)) {
      cached = MklMatrices::from_cell(cell);
      cached_for = &cell;
    }
    const double p_a = profile.p_a(i);
    const double p_b = profile.p_b(i);

    if (i + 1 == n) {
      result.p_success = prob::require_probability(
          final_success(cached, p_a, p_b, carry, options.counter),
          "RecursiveAnalyzer P(Succ)");
    }
    // The carry advance of the last stage is "NR" for P(Succ) (paper
    // Table 4) but we still compute it: it is what composition into a
    // wider chain would consume, and the trace reports it.
    const CarryState next =
        advance_stage(cached, p_a, p_b, carry,
                      i + 1 == n ? nullptr : options.counter);
    if (options.record_trace) {
      result.trace.push_back(StageTrace{p_a, p_b, carry, next});
    }
    carry = next;
  }

  result.final_carry = carry;
  result.p_error = 1.0 - result.p_success;
  return result;
}

AnalysisResult RecursiveAnalyzer::analyze(const adders::AdderCell& cell,
                                          const multibit::InputProfile& profile,
                                          const AnalyzeOptions& options) {
  return analyze(multibit::AdderChain::homogeneous(cell, profile.width()),
                 profile, options);
}

double RecursiveAnalyzer::error_probability(
    const adders::AdderCell& cell, const multibit::InputProfile& profile) {
  return analyze(cell, profile).p_error;
}

std::vector<double> stage_loss_report(const AnalysisResult& result) {
  if (result.trace.empty()) {
    throw std::invalid_argument(
        "stage_loss_report: analyze with record_trace = true first");
  }
  std::vector<double> losses;
  losses.reserve(result.trace.size());
  for (const StageTrace& stage : result.trace) {
    losses.push_back(stage.carry_in.success_mass() -
                     stage.carry_out.success_mass());
  }
  return losses;
}

}  // namespace sealpaa::analysis

// Correlated-operand generalization of the paper's recursion.
//
// Equation 10 factors the IPM entries as P(A).P(B).P(C ∩ Succ) using the
// independence assumption of §4.  The recursion only actually requires
// per-stage joint operand probabilities, so substituting
// P(A_i = a, B_i = b) for the product lifts the assumption at zero
// asymptotic cost — the carry pair remains the sufficient statistic.
#pragma once

#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/joint_profile.hpp"

namespace sealpaa::analysis {

/// Recursive analyzer over a correlated-operand profile.  Reduces to
/// RecursiveAnalyzer when the profile is a product distribution.
class CorrelatedAnalyzer {
 public:
  [[nodiscard]] static AnalysisResult analyze(
      const multibit::AdderChain& chain,
      const multibit::JointInputProfile& profile,
      const AnalyzeOptions& options = {});

  [[nodiscard]] static double error_probability(
      const adders::AdderCell& cell,
      const multibit::JointInputProfile& profile);
};

/// IPM for one stage from a joint operand distribution (generalizes
/// input_probability_matrix).
[[nodiscard]] constexpr Vector8 joint_input_probability_matrix(
    const multibit::JointBitDistribution& joint,
    const CarryState& carry) noexcept {
  Vector8 ipm{};
  for (std::size_t ab = 0; ab < 4; ++ab) {
    ipm[2 * ab] = joint[ab] * carry.c0;
    ipm[2 * ab + 1] = joint[ab] * carry.c1;
  }
  return ipm;
}

}  // namespace sealpaa::analysis

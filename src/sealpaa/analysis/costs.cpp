#include "sealpaa/analysis/costs.hpp"

#include "sealpaa/analysis/recursive.hpp"

namespace sealpaa::analysis {

ResourceCounts paper_model_equal_probabilities() {
  return ResourceCounts{32, 21, 3};
}

ResourceCounts paper_model_varying_probabilities(int n_bits) {
  return ResourceCounts{48, 21, static_cast<std::uint64_t>(n_bits) + 1};
}

util::OpCounts implementation_model(const adders::AdderCell& cell,
                                    std::size_t n_bits) {
  const MklMatrices mkl = MklMatrices::from_cell(cell);
  const auto ones = [](const Vector8& v) {
    std::uint64_t count = 0;
    for (double x : v) count += (x != 0.0) ? 1U : 0U;
    return count;
  };
  const std::uint64_t ones_m = ones(mkl.m);
  const std::uint64_t ones_k = ones(mkl.k);
  const std::uint64_t ones_l = ones(mkl.l);

  util::OpCounts counts;
  const std::uint64_t advanced = n_bits > 0 ? n_bits - 1 : 0;
  // Per advanced stage: IPM (12 mul + 2 sub) and two selective dots.
  counts.multiplications = 12 * advanced;
  counts.additions = 2 * advanced;
  counts.additions += advanced * ((ones_m > 1 ? ones_m - 1 : 0) +
                                  (ones_k > 1 ? ones_k - 1 : 0));
  // Final stage: IPM + dot with L.
  if (n_bits > 0) {
    counts.multiplications += 12;
    counts.additions += 2 + (ones_l > 1 ? ones_l - 1 : 0);
  }
  counts.memory_units = 3;
  return counts;
}

util::OpCounts measure_recursive(const multibit::AdderChain& chain,
                                 const multibit::InputProfile& profile) {
  util::OpCounter counter;
  AnalyzeOptions options;
  options.counter = &counter;
  (void)RecursiveAnalyzer::analyze(chain, profile, options);
  return counter.counts();
}

}  // namespace sealpaa::analysis

#include "sealpaa/analysis/error_pmf.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"
#include "sealpaa/sim/metrics.hpp"  // header-only worse_error / error_magnitude

namespace sealpaa::analysis {

namespace {

constexpr std::size_t joint_index(bool ca, bool ce) noexcept {
  return (static_cast<std::size_t>(ca) << 1) | static_cast<std::size_t>(ce);
}

// Probability of each (a, b) operand-bit combination at one stage —
// same ordering as the moment DP in joint.cpp.
std::array<double, 4> ab_weights(double p_a, double p_b) noexcept {
  const double na = 1.0 - p_a;
  const double nb = 1.0 - p_b;
  return {na * nb, na * p_b, p_a * nb, p_a * p_b};
}

// Unsigned value span (max - min); well-defined for any int64 pair.
std::uint64_t value_span(std::int64_t min, std::int64_t max) noexcept {
  return static_cast<std::uint64_t>(max) - static_cast<std::uint64_t>(min);
}

[[noreturn]] void throw_support_overflow(std::size_t support,
                                         std::size_t max_support) {
  throw std::length_error("ErrorPmf: support " + std::to_string(support) +
                          " exceeds PmfOptions::max_support " +
                          std::to_string(max_support));
}

// In-place iterative radix-2 Cooley-Tukey; `size` must be a power of two.
void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t size = data.size();
  for (std::size_t i = 1, j = 0; i < size; ++i) {
    std::size_t bit = size >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= size; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::acos(-1.0) / static_cast<double>(len);
    const std::complex<double> root(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < size; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> even = data[i + k];
        const std::complex<double> odd = data[i + k + len / 2] * w;
        data[i + k] = even + odd;
        data[i + k + len / 2] = even - odd;
        w *= root;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(size);
  }
}

}  // namespace

ErrorPmf ErrorPmf::point_mass(std::int64_t value, double probability) {
  return from_entries({Entry{value, probability}});
}

ErrorPmf ErrorPmf::from_entries(Entries entries) {
  for (const Entry& entry : entries) {
    if (!(entry.probability >= 0.0)) {
      throw std::invalid_argument(
          "ErrorPmf: probabilities must be non-negative finite");
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.value < b.value;
                   });
  Entries merged;
  merged.reserve(entries.size());
  std::size_t i = 0;
  while (i < entries.size()) {
    const std::int64_t value = entries[i].value;
    prob::KahanSum mass;
    for (; i < entries.size() && entries[i].value == value; ++i) {
      mass.add(entries[i].probability);
    }
    if (mass.value() > 0.0) merged.push_back(Entry{value, mass.value()});
  }
  return ErrorPmf(std::move(merged));
}

ErrorPmf ErrorPmf::mixture(std::span<const Term> terms,
                           const PmfOptions& options) {
  // Live terms in caller order — the accumulation order below is a
  // deterministic function of that order in both representations.
  std::vector<Term> live;
  live.reserve(terms.size());
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::size_t total_entries = 0;
  for (const Term& term : terms) {
    if (term.pmf == nullptr || term.pmf->empty() || term.scale == 0.0) {
      continue;
    }
    if (!(term.scale > 0.0)) {
      throw std::invalid_argument("ErrorPmf::mixture: scales must be >= 0");
    }
    live.push_back(term);
    min = std::min(min, term.pmf->min_value() + term.offset);
    max = std::max(max, term.pmf->max_value() + term.offset);
    total_entries += term.pmf->support_size();
  }
  if (live.empty()) return ErrorPmf{};

  const std::uint64_t span = value_span(min, max);
  Entries out;
  if (span < options.dense_threshold) {
    // Dense compensated accumulation over the contiguous span.  Each
    // slot receives its contributions in term order, matching the
    // sparse path's stable merge bit for bit.
    std::vector<prob::KahanSum> slots(static_cast<std::size_t>(span) + 1);
    for (const Term& term : live) {
      for (const Entry& entry : term.pmf->entries()) {
        const std::uint64_t slot =
            value_span(min, entry.value + term.offset);
        slots[static_cast<std::size_t>(slot)].add(term.scale *
                                                  entry.probability);
      }
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const double mass = slots[s].value();
      if (mass > 0.0) {
        out.push_back(Entry{min + static_cast<std::int64_t>(s), mass});
      }
    }
  } else {
    // Sparse path: gather every shifted contribution, stable-sort by
    // value (ties keep term order), merge runs with compensation.
    Entries gathered;
    gathered.reserve(total_entries);
    for (const Term& term : live) {
      for (const Entry& entry : term.pmf->entries()) {
        gathered.push_back(Entry{entry.value + term.offset,
                                 term.scale * entry.probability});
      }
    }
    std::stable_sort(gathered.begin(), gathered.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.value < b.value;
                     });
    std::size_t i = 0;
    while (i < gathered.size()) {
      const std::int64_t value = gathered[i].value;
      prob::KahanSum mass;
      for (; i < gathered.size() && gathered[i].value == value; ++i) {
        mass.add(gathered[i].probability);
      }
      if (mass.value() > 0.0) out.push_back(Entry{value, mass.value()});
    }
  }
  if (out.size() > options.max_support) {
    throw_support_overflow(out.size(), options.max_support);
  }
  return ErrorPmf(std::move(out));
}

ErrorPmf ErrorPmf::convolve(const ErrorPmf& a, const ErrorPmf& b,
                            const PmfOptions& options) {
  if (a.empty() || b.empty()) return ErrorPmf{};
  const std::size_t naive_cost = a.support_size() * b.support_size();
  const std::uint64_t out_span =
      value_span(a.min_value(), a.max_value()) +
      value_span(b.min_value(), b.max_value());

  if (naive_cost > options.fft_threshold &&
      out_span < (std::uint64_t{1} << 26)) {
    // FFT path: both operands dense over their spans, circular
    // convolution sized to the next power of two covering the result.
    const std::size_t la = static_cast<std::size_t>(
        value_span(a.min_value(), a.max_value())) + 1;
    const std::size_t lb = static_cast<std::size_t>(
        value_span(b.min_value(), b.max_value())) + 1;
    std::size_t size = 1;
    while (size < la + lb - 1) size <<= 1;
    std::vector<std::complex<double>> fa(size), fb(size);
    for (const Entry& entry : a.entries()) {
      fa[static_cast<std::size_t>(value_span(a.min_value(), entry.value))] =
          entry.probability;
    }
    for (const Entry& entry : b.entries()) {
      fb[static_cast<std::size_t>(value_span(b.min_value(), entry.value))] =
          entry.probability;
    }
    fft(fa, /*inverse=*/false);
    fft(fb, /*inverse=*/false);
    for (std::size_t i = 0; i < size; ++i) fa[i] *= fb[i];
    fft(fa, /*inverse=*/true);

    double peak = 0.0;
    for (std::size_t i = 0; i + 1 < la + lb; ++i) {
      peak = std::max(peak, fa[i].real());
    }
    // Round-off from the transform shows up as tiny (possibly negative)
    // coefficients on values with no true mass; clip below the noise
    // floor instead of reporting phantom support.
    const double floor = peak * static_cast<double>(size) *
                         std::numeric_limits<double>::epsilon();
    Entries out;
    const std::int64_t base = a.min_value() + b.min_value();
    for (std::size_t i = 0; i + 1 < la + lb; ++i) {
      const double mass = fa[i].real();
      if (mass > floor) {
        out.push_back(Entry{base + static_cast<std::int64_t>(i), mass});
      }
    }
    if (out.size() > options.max_support) {
      throw_support_overflow(out.size(), options.max_support);
    }
    return ErrorPmf(std::move(out));
  }

  // Exact path: a mixture of b shifted by each point of a.
  std::vector<Term> terms;
  terms.reserve(a.support_size());
  for (const Entry& entry : a.entries()) {
    terms.push_back(Term{&b, entry.probability, entry.value});
  }
  return mixture(terms, options);
}

double ErrorPmf::total_mass() const noexcept {
  prob::KahanSum mass;
  for (const Entry& entry : entries_) mass.add(entry.probability);
  return mass.value();
}

double ErrorPmf::probability_of(std::int64_t value) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), value,
      [](const Entry& entry, std::int64_t v) { return entry.value < v; });
  if (it != entries_.end() && it->value == value) return it->probability;
  return 0.0;
}

double ErrorPmf::error_rate() const noexcept {
  prob::KahanSum mass;
  for (const Entry& entry : entries_) {
    if (entry.value != 0) mass.add(entry.probability);
  }
  return mass.value();
}

double ErrorPmf::mean_error() const noexcept {
  prob::KahanSum sum;
  for (const Entry& entry : entries_) {
    sum.add(entry.probability * static_cast<double>(entry.value));
  }
  return sum.value();
}

double ErrorPmf::mean_error_distance() const noexcept {
  prob::KahanSum sum;
  for (const Entry& entry : entries_) {
    sum.add(entry.probability *
            static_cast<double>(sim::error_magnitude(entry.value)));
  }
  return sum.value();
}

double ErrorPmf::mean_squared_error() const noexcept {
  prob::KahanSum sum;
  for (const Entry& entry : entries_) {
    const double magnitude =
        static_cast<double>(sim::error_magnitude(entry.value));
    sum.add(entry.probability * magnitude * magnitude);
  }
  return sum.value();
}

std::int64_t ErrorPmf::worst_case_error() const noexcept {
  std::int64_t worst = 0;
  for (const Entry& entry : entries_) {
    if (sim::worse_error(entry.value, worst)) worst = entry.value;
  }
  return worst;
}

double ErrorPmf::entropy_bits() const noexcept {
  prob::KahanSum bits;
  for (const Entry& entry : entries_) {
    if (entry.probability > 0.0) {
      bits.add(-entry.probability * std::log2(entry.probability));
    }
  }
  return std::max(0.0, bits.value());
}

double ErrorPmf::psnr_db(std::size_t width) const noexcept {
  const double mse = mean_squared_error();
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  const double peak = std::pow(2.0, static_cast<double>(width)) - 1.0;
  return 10.0 * std::log10(peak * peak / mse);
}

ErrorPmf::Entries ErrorPmf::top_mass_points(std::size_t k) const {
  Entries ranked = entries_;
  const std::size_t keep = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                    ranked.end(), [](const Entry& a, const Entry& b) {
                      if (a.probability != b.probability) {
                        return a.probability > b.probability;
                      }
                      return a.value < b.value;
                    });
  ranked.resize(keep);
  return ranked;
}

ErrorPmfState make_error_pmf_state(double p_cin) {
  ErrorPmfState state;
  if (p_cin < 1.0) {
    state.joint[joint_index(false, false)] =
        ErrorPmf::point_mass(0, 1.0 - p_cin);
  }
  if (p_cin > 0.0) {
    state.joint[joint_index(true, true)] = ErrorPmf::point_mass(0, p_cin);
  }
  return state;
}

void advance_error_pmf(ErrorPmfState& state, const adders::AdderCell& cell,
                       double p_a, double p_b, const PmfOptions& options) {
  // Stage 62 would put the carry-out weight at 2^63, outside the signed
  // error domain; the chain layer allows width 63 but the PMF does not.
  if (state.stage >= 62) {
    throw std::length_error(
        "advance_error_pmf: error-PMF propagation supports widths <= 62");
  }
  const adders::AdderCell::Rows& exact = adders::AdderCell::accurate_rows();
  const std::array<double, 4> ab = ab_weights(p_a, p_b);
  const std::int64_t weight = std::int64_t{1} << state.stage;

  // Segmented convolution: each (source pair, operand combination)
  // contributes its segment shifted by d_i = (s_approx - s_exact) * 2^i
  // to exactly one destination pair.
  std::array<std::vector<ErrorPmf::Term>, 4> terms;
  for (std::size_t src = 0; src < 4; ++src) {
    const ErrorPmf& segment = state.joint[src];
    if (segment.empty()) continue;
    const bool ca = (src & 2U) != 0;
    const bool ce = (src & 1U) != 0;
    for (std::size_t abi = 0; abi < 4; ++abi) {
      if (ab[abi] == 0.0) continue;
      const bool a = (abi & 2U) != 0;
      const bool b = (abi & 1U) != 0;
      const adders::BitPair approx_out =
          cell.rows()[adders::AdderCell::row_index(a, b, ca)];
      const adders::BitPair exact_out =
          exact[adders::AdderCell::row_index(a, b, ce)];
      const std::int64_t delta =
          (static_cast<std::int64_t>(approx_out.sum) -
           static_cast<std::int64_t>(exact_out.sum)) *
          weight;
      terms[joint_index(approx_out.carry, exact_out.carry)].push_back(
          ErrorPmf::Term{&segment, ab[abi], delta});
    }
  }

  std::array<ErrorPmf, 4> next;
  for (std::size_t dst = 0; dst < 4; ++dst) {
    next[dst] = ErrorPmf::mixture(terms[dst], options);
  }
  state.joint = std::move(next);
  ++state.stage;
}

ErrorPmf finalize_error_pmf(const ErrorPmfState& state,
                            const PmfOptions& options) {
  const std::int64_t weight = std::int64_t{1} << state.stage;
  std::vector<ErrorPmf::Term> terms;
  for (std::size_t j = 0; j < 4; ++j) {
    if (state.joint[j].empty()) continue;
    const std::int64_t ca = (j & 2U) != 0 ? 1 : 0;
    const std::int64_t ce = (j & 1U) != 0 ? 1 : 0;
    terms.push_back(ErrorPmf::Term{&state.joint[j], 1.0, (ca - ce) * weight});
  }
  return ErrorPmf::mixture(terms, options);
}

ErrorPmf propagate_error_pmf(const multibit::AdderChain& chain,
                             const multibit::InputProfile& profile,
                             const PmfOptions& options) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "propagate_error_pmf: chain and profile widths differ");
  }
  ErrorPmfState state = make_error_pmf_state(profile.p_cin());
  for (std::size_t i = 0; i < chain.width(); ++i) {
    advance_error_pmf(state, chain.stage(i), profile.p_a(i), profile.p_b(i),
                      options);
  }
  return finalize_error_pmf(state, options);
}

}  // namespace sealpaa::analysis

// Exact error statistics for block-based approximate adders.
//
// A block adder errs exactly when some block's predicted carry-in
// (computed from its P_i-bit window with carry-in 0) differs from the
// true carry at that position.  BlockErrorModel conditions every
// block's error contribution on that true-vs-predicted carry event the
// way Wu et al. (arXiv:1703.03522) do — but exactly, by sweeping one
// joint-carry DP across the operand bits:
//
//   state = (exact carry, carry of every live prediction window),
//
// at most 2^(1 + kMaxLiveWindows) states.  Two quantities fall out of
// the same sweep:
//
//   * error rate — checked at each block's first result bit, where the
//     predicted and exact carries either agree (and then agree for the
//     rest of the block: both advance through the same majority
//     recurrence on the same operand bits) or the whole block is wrong;
//     mismatched mass is dropped and the lost mass is P(Error);
//   * the full signed-error PMF — one sparse `ErrorPmf` per joint
//     state, each result bit of a mispredicted block mixing in its
//     delta (s_approx - s_exact) * 2^j and the final carry-out
//     difference folding in as (c_approx - c_exact) * 2^N, giving
//     MED/MSE/WCE/PSNR with zero simulation samples.
//
// Per-block mismatch marginals have a closed form (true carry at the
// window start AND every window bit propagates) that the sweep also
// reports, together with the independence approximation
// 1 - prod(1 - mismatch_i) for comparison against the exact rate.
#pragma once

#include <vector>

#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::analysis {

struct BlockAnalysisOptions {
  /// Representation/switchover knobs forwarded to the PMF mixtures.
  PmfOptions pmf;
  /// Skip the PMF propagation (error rate and marginals only) — the
  /// DSE inner loop uses this to stay cheap.
  bool compute_pmf = true;
};

struct BlockAnalysis {
  /// Exact P(approx output != exact output), carry-out included — the
  /// surviving-mass complement of the conditioning DP.
  double p_error = 0.0;
  /// 1 - prod(1 - mismatch_i): exact only if block mispredictions were
  /// independent, which shared carry history makes them not.
  double p_error_independent_approx = 0.0;
  /// Exact P(block i's predicted carry != true carry), one entry per
  /// block; block 0 has no prediction so entry 0 is 0.
  std::vector<double> block_mismatch;
  /// Exact signed-error PMF (empty when compute_pmf was false).
  ErrorPmf pmf;
};

class BlockErrorModel {
 public:
  /// Analyzes `spec` under `profile` (profile width must equal
  /// spec.n(); the carry-in probability feeds block 0 and the exact
  /// reference alike).  O(N * 2^(1+live) * support).
  [[nodiscard]] static BlockAnalysis analyze(
      const multibit::BlockChainSpec& spec,
      const multibit::InputProfile& profile,
      const BlockAnalysisOptions& options = {});

  /// Ground-truth oracle: enumerates every (a, b, cin) assignment
  /// weighted by the profile and histograms the signed error through
  /// the functional BlockAdder.  O(4^N); throws past `max_width`.
  [[nodiscard]] static ErrorPmf exhaustive_pmf(
      const multibit::BlockChainSpec& spec,
      const multibit::InputProfile& profile, std::size_t max_width = 12);
};

}  // namespace sealpaa::analysis

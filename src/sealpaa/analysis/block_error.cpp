#include "sealpaa/analysis/block_error.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sealpaa/prob/kahan.hpp"

namespace sealpaa::analysis {

namespace {

constexpr bool majority(bool a, bool b, bool c) noexcept {
  return (static_cast<int>(a) + static_cast<int>(b) + static_cast<int>(c)) >=
         2;
}

/// Closed-form per-block mismatch marginals: block i's prediction is
/// wrong iff the true carry into its window start is 1 and every window
/// bit propagates (a XOR b) — the carry depends only on lower bits, so
/// each product is an exact marginal.
void fill_marginals(const multibit::BlockChainSpec& spec,
                    const multibit::InputProfile& profile,
                    BlockAnalysis& analysis) {
  const int n = spec.n();
  std::vector<double> p_carry_at(static_cast<std::size_t>(n) + 1, 0.0);
  double carry_one = profile.p_cin();
  for (int j = 0; j < n; ++j) {
    p_carry_at[static_cast<std::size_t>(j)] = carry_one;
    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    carry_one = pa * pb + (pa * (1.0 - pb) + pb * (1.0 - pa)) * carry_one;
  }
  p_carry_at[static_cast<std::size_t>(n)] = carry_one;

  analysis.block_mismatch.assign(
      static_cast<std::size_t>(spec.block_count()), 0.0);
  double p_all_ok = 1.0;
  for (int i = 1; i < spec.block_count(); ++i) {
    double mismatch = p_carry_at[static_cast<std::size_t>(spec.window_start(i))];
    for (int j = spec.window_start(i); j < spec.result_start(i); ++j) {
      const double pa = profile.p_a(static_cast<std::size_t>(j));
      const double pb = profile.p_b(static_cast<std::size_t>(j));
      mismatch *= pa * (1.0 - pb) + pb * (1.0 - pa);
    }
    analysis.block_mismatch[static_cast<std::size_t>(i)] = mismatch;
    p_all_ok *= 1.0 - mismatch;
  }
  analysis.p_error_independent_approx = 1.0 - p_all_ok;
}

/// Exact error rate: joint DP over (exact carry, live window carries),
/// dropping the mass of paths whose predicted carry disagrees with the
/// exact carry at a block's first result bit.  A window only has to
/// live until that check: once the carries agree they advance through
/// the same majority recurrence on the same bits and stay equal for the
/// whole block (carry-out included), so the surviving mass is exactly
/// P(no error).
double exact_error_rate(const multibit::BlockChainSpec& spec,
                        const multibit::InputProfile& profile) {
  const int n = spec.n();
  const int k = spec.block_count();
  std::vector<int> active;  // block indices with a tracked window carry
  std::vector<double> state(2, 0.0);
  state[0] = 1.0 - profile.p_cin();  // bit 0: exact carry
  state[1] = profile.p_cin();

  for (int j = 0; j < n; ++j) {
    // Open windows starting at j (block 0 shares the exact carry chain
    // and is never tracked).  The new carry bit is appended as the most
    // significant state bit, initialised to 0, so existing masses keep
    // their encoding.
    for (int block = 1; block < k; ++block) {
      if (spec.window_start(block) == j) {
        active.push_back(block);
        state.resize(std::size_t{2} << active.size(), 0.0);
      }
    }

    // Check-and-retire at the producing block's first result bit: drop
    // mismatched paths, then marginalise the now-redundant window bit.
    for (std::size_t w = 0; w < active.size();) {
      if (spec.result_start(active[w]) != j) {
        ++w;
        continue;
      }
      std::vector<double> reduced(state.size() / 2, 0.0);
      for (std::size_t s = 0; s < state.size(); ++s) {
        const bool c_exact = (s & 1U) != 0;
        const bool c_window = ((s >> (1 + w)) & 1U) != 0;
        if (c_window != c_exact) continue;  // error path dropped
        const std::size_t low = s & ((std::size_t{1} << (1 + w)) - 1);
        const std::size_t high = (s >> (2 + w)) << (1 + w);
        reduced[high | low] += state[s];
      }
      state = std::move(reduced);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
    }

    // Advance every carry chain through bit j.
    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                          pa * (1.0 - pb), pa * pb};
    std::vector<double> next(state.size(), 0.0);
    for (std::size_t s = 0; s < state.size(); ++s) {
      if (state[s] == 0.0) continue;
      for (int abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2) != 0;
        const bool b = (abi & 1) != 0;
        std::size_t s2 = 0;
        if (majority(a, b, (s & 1U) != 0)) s2 |= 1U;
        for (std::size_t w = 0; w < active.size(); ++w) {
          if (majority(a, b, ((s >> (1 + w)) & 1U) != 0)) {
            s2 |= std::size_t{1} << (1 + w);
          }
        }
        next[s2] += state[s] * ab[abi];
      }
    }
    state = std::move(next);
  }

  // Every window was retired at its result start (result_start(i) < n),
  // so the surviving mass is spread over the exact-carry bit only.
  prob::KahanSum ok_mass;
  for (const double mass : state) ok_mass.add(mass);
  return std::clamp(1.0 - ok_mass.value(), 0.0, 1.0);
}

/// Exact signed-error PMF: same joint-carry sweep, but instead of
/// dropping mismatched paths each state carries the conditioned error
/// PMF, and every result bit of a mispredicted block mixes in its delta
/// (s_approx - s_exact) * 2^j.  Windows stay live through their whole
/// result region; the final block's carry survives to the end so the
/// carry-out difference can be folded in as (c_window - c_exact) * 2^N.
ErrorPmf exact_pmf(const multibit::BlockChainSpec& spec,
                   const multibit::InputProfile& profile,
                   const PmfOptions& options) {
  const int n = spec.n();
  const int k = spec.block_count();
  std::vector<int> active;
  std::vector<ErrorPmf> state(2);
  if (profile.p_cin() < 1.0) {
    state[0] = ErrorPmf::point_mass(0, 1.0 - profile.p_cin());
  }
  if (profile.p_cin() > 0.0) {
    state[1] = ErrorPmf::point_mass(0, profile.p_cin());
  }

  for (int j = 0; j < n; ++j) {
    for (int block = 1; block < k; ++block) {
      if (spec.window_start(block) == j) {
        active.push_back(block);
        state.resize(std::size_t{2} << active.size());
      }
    }

    const int producer = spec.producing_block(j);
    std::size_t producer_bit = 0;  // 0 = block 0, no tracked prediction
    if (producer >= 1) {
      const auto it = std::find(active.begin(), active.end(), producer);
      producer_bit = 1 + static_cast<std::size_t>(it - active.begin());
    }

    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                          pa * (1.0 - pb), pa * pb};
    std::vector<std::vector<ErrorPmf::Term>> terms(state.size());
    for (std::size_t s = 0; s < state.size(); ++s) {
      if (state[s].empty()) continue;
      const bool c_exact = (s & 1U) != 0;
      for (int abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2) != 0;
        const bool b = (abi & 1) != 0;
        std::int64_t delta = 0;
        if (producer_bit != 0) {
          const bool c_window = ((s >> producer_bit) & 1U) != 0;
          if (c_window != c_exact) {
            const bool approx_sum = a != b ? !c_window : c_window;
            delta = approx_sum ? (std::int64_t{1} << j)
                               : -(std::int64_t{1} << j);
          }
        }
        std::size_t s2 = 0;
        if (majority(a, b, c_exact)) s2 |= 1U;
        for (std::size_t w = 0; w < active.size(); ++w) {
          if (majority(a, b, ((s >> (1 + w)) & 1U) != 0)) {
            s2 |= std::size_t{1} << (1 + w);
          }
        }
        terms[s2].push_back(
            ErrorPmf::Term{&state[s], ab[abi], delta});
      }
    }
    std::vector<ErrorPmf> next(state.size());
    for (std::size_t s = 0; s < state.size(); ++s) {
      if (!terms[s].empty()) next[s] = ErrorPmf::mixture(terms[s], options);
    }
    state = std::move(next);

    // Retire windows whose last result bit was j (the final block stays
    // live so its carry-out can be folded below).
    for (std::size_t w = 0; w < active.size();) {
      const int block = active[w];
      if (spec.result_end(block) != j + 1 || block == k - 1) {
        ++w;
        continue;
      }
      std::vector<ErrorPmf> reduced(state.size() / 2);
      for (std::size_t s = 0; s < reduced.size(); ++s) {
        const std::size_t low = s & ((std::size_t{1} << (1 + w)) - 1);
        const std::size_t high = (s >> (1 + w)) << (2 + w);
        const std::size_t zero = high | low;
        const std::size_t one = zero | (std::size_t{1} << (1 + w));
        std::vector<ErrorPmf::Term> merge;
        if (!state[zero].empty()) {
          merge.push_back(ErrorPmf::Term{&state[zero], 1.0, 0});
        }
        if (!state[one].empty()) {
          merge.push_back(ErrorPmf::Term{&state[one], 1.0, 0});
        }
        if (!merge.empty()) reduced[s] = ErrorPmf::mixture(merge, options);
      }
      state = std::move(reduced);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
    }
  }

  // Fold the carry-out difference and merge the surviving states.  With
  // a single block there is no tracked window and the carry-out is the
  // exact carry, so the offset is 0.
  std::size_t final_carry_bit = 0;
  if (!active.empty()) {
    const auto it = std::find(active.begin(), active.end(), k - 1);
    final_carry_bit = 1 + static_cast<std::size_t>(it - active.begin());
  }
  std::vector<ErrorPmf::Term> merge;
  for (std::size_t s = 0; s < state.size(); ++s) {
    if (state[s].empty()) continue;
    const int c_exact = static_cast<int>(s & 1U);
    const int c_window =
        final_carry_bit == 0
            ? c_exact
            : static_cast<int>((s >> final_carry_bit) & 1U);
    const std::int64_t offset =
        static_cast<std::int64_t>(c_window - c_exact) * (std::int64_t{1} << n);
    merge.push_back(ErrorPmf::Term{&state[s], 1.0, offset});
  }
  return ErrorPmf::mixture(merge, options);
}

}  // namespace

BlockAnalysis BlockErrorModel::analyze(const multibit::BlockChainSpec& spec,
                                       const multibit::InputProfile& profile,
                                       const BlockAnalysisOptions& options) {
  if (static_cast<int>(profile.width()) != spec.n()) {
    throw std::invalid_argument(
        "BlockErrorModel: profile width must equal the block-adder width");
  }
  BlockAnalysis analysis;
  fill_marginals(spec, profile, analysis);
  analysis.p_error = exact_error_rate(spec, profile);
  if (options.compute_pmf) {
    analysis.pmf = exact_pmf(spec, profile, options.pmf);
  }
  return analysis;
}

ErrorPmf BlockErrorModel::exhaustive_pmf(const multibit::BlockChainSpec& spec,
                                         const multibit::InputProfile& profile,
                                         std::size_t max_width) {
  const int n = spec.n();
  if (static_cast<int>(profile.width()) != n) {
    throw std::invalid_argument(
        "BlockErrorModel::exhaustive_pmf: profile width must equal the "
        "block-adder width");
  }
  if (static_cast<std::size_t>(n) > max_width) {
    throw std::invalid_argument(
        "BlockErrorModel::exhaustive_pmf: width " + std::to_string(n) +
        " exceeds the enumeration guard " + std::to_string(max_width));
  }
  const multibit::BlockAdder adder(spec);
  std::map<std::int64_t, prob::KahanSum> histogram;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (int cin = 0; cin < 2; ++cin) {
    const double p_cin_branch =
        cin == 1 ? profile.p_cin() : 1.0 - profile.p_cin();
    if (p_cin_branch == 0.0) continue;
    for (std::uint64_t a = 0; a < limit; ++a) {
      for (std::uint64_t b = 0; b < limit; ++b) {
        const auto approx = adder.evaluate(a, b, cin == 1);
        const auto exact =
            multibit::exact_add(a, b, cin == 1, static_cast<std::size_t>(n));
        const std::int64_t error =
            static_cast<std::int64_t>(
                approx.value(static_cast<std::size_t>(n))) -
            static_cast<std::int64_t>(
                exact.value(static_cast<std::size_t>(n)));
        histogram[error].add(profile.assignment_probability(a, b, cin == 1));
      }
    }
  }
  ErrorPmf::Entries entries;
  entries.reserve(histogram.size());
  for (const auto& [value, mass] : histogram) {
    entries.push_back({value, mass.value()});
  }
  return ErrorPmf::from_entries(std::move(entries));
}

}  // namespace sealpaa::analysis

// Design-bound queries built on the recursion.
//
// The paper's §5 observes that "none of the LPAA is useful beyond
// 10-bits cascading" at p = 0.5.  These helpers turn that observation
// into an API: given an application's error tolerance, how many stages
// of a cell can be cascaded, and how many LSBs of an N-bit adder may be
// approximated?  Both exploit the monotonicity of the error probability
// in the number of approximate stages (a property test in
// tests/test_property_sweeps.cpp).
#pragma once

#include <cstddef>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::analysis {

/// Largest width N <= cap such that an N-bit homogeneous chain of `cell`
/// with uniform input probability `p` has P(Error) <= epsilon.  Returns
/// 0 when even a single stage exceeds the tolerance.
[[nodiscard]] int max_cascadable_width(const adders::AdderCell& cell,
                                       double p, double epsilon,
                                       int cap = 63);

/// Largest k such that the hybrid N-bit chain with `cell` on the k LSBs
/// and exact adders above has P(Error) <= epsilon under uniform input
/// probability `p` (the LSB-only approximation pattern used in
/// image/DSP datapaths).  Returns 0 when no stage may be approximated.
[[nodiscard]] int max_approximate_lsbs(const adders::AdderCell& cell,
                                       std::size_t width, double p,
                                       double epsilon);

}  // namespace sealpaa::analysis

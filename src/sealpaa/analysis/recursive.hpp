// The paper's core contribution (§4, Algorithm 1): recursive, matrix-
// based evaluation of the error probability of a multi-bit approximate
// adder in O(N) time and O(1) state.
//
// Per stage i the analyzer carries the pair
//   ( P(C=0 ∩ all stages 0..i-1 successful),
//     P(C=1 ∩ all stages 0..i-1 successful) )
// builds the 1x8 IPM (Eq. 10) and advances it via dot products with the
// cell's M and K matrices (Eq. 11).  After the last stage the success
// probability is IPM.L (Eq. 12) and P(Error) = 1 - P(Succ) (Eq. 9).
#pragma once

#include <vector>

#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/op_counter.hpp"

namespace sealpaa::analysis {

/// Per-stage record of the recursion, mirroring the rows of the paper's
/// Table 4 worked example.
struct StageTrace {
  double p_a = 0.0;
  double p_b = 0.0;
  CarryState carry_in;   // P(C_curr ∩ Succ), both polarities
  CarryState carry_out;  // P(C_next ∩ Succ), both polarities
};

/// Result of analyzing one multi-bit adder.
struct AnalysisResult {
  double p_success = 1.0;
  double p_error = 0.0;
  /// Per-stage trace; only filled when Options::record_trace is set.
  std::vector<StageTrace> trace;
  /// Success-filtered carry state after the final stage.  Not needed for
  /// P(Succ) (the paper marks it "NR") but useful when composing wider
  /// analyses from sub-chains.
  CarryState final_carry;
};

/// Options controlling the recursion.
struct AnalyzeOptions {
  bool record_trace = false;
  /// When set, every multiply/add performed by the recursion is counted
  /// (used to reproduce Table 8 and Figure 1's computation counts).
  util::OpCounter* counter = nullptr;
};

/// The analyzer for homogeneous or hybrid ripple chains.
class RecursiveAnalyzer {
 public:
  /// Analyzes `chain` under `profile`.  Widths must match
  /// (std::invalid_argument otherwise).
  [[nodiscard]] static AnalysisResult analyze(const multibit::AdderChain& chain,
                                              const multibit::InputProfile& profile,
                                              const AnalyzeOptions& options = {});

  /// Convenience overload: homogeneous chain of `cell` at the profile's
  /// width.
  [[nodiscard]] static AnalysisResult analyze(const adders::AdderCell& cell,
                                              const multibit::InputProfile& profile,
                                              const AnalyzeOptions& options = {});

  /// Error probability only (the most common query).
  [[nodiscard]] static double error_probability(
      const adders::AdderCell& cell, const multibit::InputProfile& profile);
};

/// Advances the carry state through one stage (Equations 10-11).  Exposed
/// so composed analyses (GeAr sub-blocks, incremental DSE) can reuse it.
[[nodiscard]] CarryState advance_stage(const MklMatrices& mkl, double p_a,
                                       double p_b, const CarryState& carry,
                                       util::OpCounter* counter = nullptr);

/// Final-stage success mass (Equation 12): IPM.L for the last stage.
[[nodiscard]] double final_success(const MklMatrices& mkl, double p_a,
                                   double p_b, const CarryState& carry,
                                   util::OpCounter* counter = nullptr);

/// Per-stage breakdown of where the success mass is lost: entry i is
/// P(stage i is the FIRST failing stage).  Requires a result produced
/// with record_trace; the entries sum to the total error probability.
/// Useful for deciding which stages of a hybrid design to upgrade.
[[nodiscard]] std::vector<double> stage_loss_report(
    const AnalysisResult& result);

}  // namespace sealpaa::analysis

// Per-sum-bit probability analysis.
//
// The paper notes (§4.1/§4.2) that "the probability of the output sum
// bits can also be evaluated using a similar matrices based approach".
// This module provides that, in two flavours:
//
//  * success-filtered: P(sum_i = 1 ∩ all stages up to i successful) and
//    the running prefix-success mass — the direct analogue of the carry
//    recursion using per-row sum/success selection vectors;
//  * unconditional signal probabilities: P(sum_i = 1) and P(carry = 1)
//    with no success filtering — the quantities needed for switching-
//    activity (dynamic power) estimation of the approximate datapath.
#pragma once

#include <vector>

#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::analysis {

/// Per-bit probability report; all vectors have the chain width.
struct SumBitReport {
  /// P(sum_i = 1 ∩ stages 0..i all successful).
  std::vector<double> p_sum_one_and_success;
  /// P(stages 0..i all successful) — monotone non-increasing.
  std::vector<double> p_prefix_success;
  /// Unconditional P(sum_i = 1) of the approximate chain.
  std::vector<double> p_sum_one;
  /// Unconditional P(carry out of stage i = 1) of the approximate chain.
  std::vector<double> p_carry_one;
  /// P(sum_i = 1) for an exact adder under the same inputs (reference
  /// for bias inspection).
  std::vector<double> p_sum_one_exact;
};

/// Selection vectors for sum-bit analysis, derived per cell.
struct SumVectors {
  Vector8 sum_one{};              // row sum bit (unconditional)
  Vector8 sum_one_and_success{};  // row sum bit AND row success
  Vector8 carry_one{};            // row carry bit (unconditional)

  [[nodiscard]] static SumVectors from_cell(const adders::AdderCell& cell);
};

class SumBitAnalyzer {
 public:
  /// Analyzes every sum bit of `chain` under `profile`.
  [[nodiscard]] static SumBitReport analyze(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile);
};

}  // namespace sealpaa::analysis

#include "sealpaa/analysis/sum_bits.hpp"

#include <stdexcept>

#include "sealpaa/adders/builtin.hpp"

namespace sealpaa::analysis {

SumVectors SumVectors::from_cell(const adders::AdderCell& cell) {
  SumVectors v;
  for (std::size_t row = 0; row < adders::AdderCell::kRows; ++row) {
    const bool sum = cell.rows()[row].sum;
    const bool carry = cell.rows()[row].carry;
    const bool success = cell.row_is_success(row);
    v.sum_one[row] = sum ? 1.0 : 0.0;
    v.sum_one_and_success[row] = (sum && success) ? 1.0 : 0.0;
    v.carry_one[row] = carry ? 1.0 : 0.0;
  }
  return v;
}

SumBitReport SumBitAnalyzer::analyze(const multibit::AdderChain& chain,
                                     const multibit::InputProfile& profile) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "SumBitAnalyzer: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  SumBitReport report;
  report.p_sum_one_and_success.reserve(n);
  report.p_prefix_success.reserve(n);
  report.p_sum_one.reserve(n);
  report.p_carry_one.reserve(n);
  report.p_sum_one_exact.reserve(n);

  // Success-filtered chain state (the paper's recursion)...
  CarryState filtered{1.0 - profile.p_cin(), profile.p_cin()};
  // ...and unconditional signal-probability states for the approximate
  // and the exact chain (q0 + q1 == 1 throughout).
  CarryState signal = filtered;
  CarryState exact_signal = filtered;

  const SumVectors exact_vectors = SumVectors::from_cell(adders::accurate());

  for (std::size_t i = 0; i < n; ++i) {
    const adders::AdderCell& cell = chain.stage(i);
    const SumVectors vectors = SumVectors::from_cell(cell);
    const MklMatrices mkl = MklMatrices::from_cell(cell);
    const double p_a = profile.p_a(i);
    const double p_b = profile.p_b(i);

    const Vector8 ipm_filtered =
        input_probability_matrix(p_a, p_b, filtered);
    report.p_sum_one_and_success.push_back(
        dot(ipm_filtered, vectors.sum_one_and_success));
    filtered = CarryState{dot(ipm_filtered, mkl.k), dot(ipm_filtered, mkl.m)};
    report.p_prefix_success.push_back(filtered.success_mass());

    const Vector8 ipm_signal = input_probability_matrix(p_a, p_b, signal);
    report.p_sum_one.push_back(dot(ipm_signal, vectors.sum_one));
    const double carry_one = dot(ipm_signal, vectors.carry_one);
    report.p_carry_one.push_back(carry_one);
    signal = CarryState{1.0 - carry_one, carry_one};

    const Vector8 ipm_exact =
        input_probability_matrix(p_a, p_b, exact_signal);
    report.p_sum_one_exact.push_back(dot(ipm_exact, exact_vectors.sum_one));
    const double exact_carry = dot(ipm_exact, exact_vectors.carry_one);
    exact_signal = CarryState{1.0 - exact_carry, exact_carry};
  }
  return report;
}

}  // namespace sealpaa::analysis

// Value-level exact analysis: a joint dynamic program over the
// (approximate carry, exact carry) pair.
//
// The paper's success event is *stage-wise* (every cell matches the
// accurate full adder on its actual inputs).  A distinct question is
// whether the *numeric output* equals the exact sum: a carry-only cell
// error can in principle be masked downstream, so
//   P(value correct) >= P(all stages successful).
// Tracking the joint distribution of the approximate and exact carry
// chains (plus two monotone flags) makes the value-level probability —
// and the exact first and second moments of the signed arithmetic
// error — computable in O(N) / O(N^2), still without any
// inclusion-exclusion.  This module quantifies the paper's implicit
// assumption that the two notions coincide for the LPAA family
// (bench_x4_masking_gap).
#pragma once

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::analysis {

/// Probabilities from the 16-state joint DP.
struct JointResult {
  /// P(every stage matched the accurate FA) — must equal the recursive
  /// analyzer's P(Succ); computed here redundantly as a cross-check.
  double p_stage_success = 1.0;
  /// P(all N sum bits AND the final carry-out equal the exact adder's).
  double p_value_correct = 1.0;
  /// P(all N sum bits equal; final carry-out ignored).
  double p_sum_bits_correct = 1.0;
};

/// Exact moments of the signed arithmetic error
///   err = approx_value - exact_value   (carry-out weighted 2^N).
struct ErrorMoments {
  double mean = 0.0;           // E[err]
  double second_moment = 0.0;  // E[err^2]

  [[nodiscard]] double variance() const noexcept {
    return second_moment - mean * mean;
  }
  [[nodiscard]] double rms() const noexcept;
};

class JointCarryAnalyzer {
 public:
  /// Runs the 16-state DP (O(N)).
  [[nodiscard]] static JointResult analyze(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile);

  /// Exact error moments via the pairwise-covariance DP (O(N^2)).
  [[nodiscard]] static ErrorMoments moments(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile);
};

}  // namespace sealpaa::analysis

#include "sealpaa/analysis/mkl.hpp"

#include <sstream>

namespace sealpaa::analysis {

MklMatrices MklMatrices::from_cell(const adders::AdderCell& cell) {
  MklMatrices out;
  for (std::size_t row = 0; row < adders::AdderCell::kRows; ++row) {
    const bool success = cell.row_is_success(row);
    const bool carry = cell.rows()[row].carry;
    out.m[row] = (success && carry) ? 1.0 : 0.0;
    out.k[row] = (success && !carry) ? 1.0 : 0.0;
    out.l[row] = success ? 1.0 : 0.0;
  }
  return out;
}

std::string MklMatrices::render(const Vector8& v) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out << ',';
    out << (v[i] != 0.0 ? '1' : '0');
  }
  out << ']';
  return out.str();
}

}  // namespace sealpaa::analysis

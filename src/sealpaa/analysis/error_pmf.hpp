// Exact error-distribution analytics: the full probability mass function
// of the signed arithmetic error
//   err = approx_value - exact_value   (carry-out weighted 2^N),
// propagated analytically through the same joint-carry decomposition the
// moment DP in joint.cpp uses — no simulation samples anywhere.
//
// The propagation state is one sparse PMF per (approximate carry, exact
// carry) pair.  Each stage contributes a signed delta
//   d_i = (s_approx - s_exact) * 2^i  in  {-2^i, 0, +2^i}
// conditioned on the joint carries, so advancing a stage is a segmented
// convolution: every (source pair, operand combination) term shifts one
// segment PMF by its delta and the four destination pairs each collect a
// weighted mixture of shifted segments.  Finalizing folds the carry-out
// difference (ca - ce) * 2^N into the merged PMF.  All probability
// accumulation is Kahan-compensated (prob/kahan.hpp) and deterministic,
// so MED/MSE/WCE land within 1e-12 of the weighted-exhaustive oracle
// while costing O(N * support) instead of O(2^(2N+1)).
//
// Mixtures accumulate sparsely (sort + compensated run-merge) until the
// destination value span fits `PmfOptions::dense_threshold`, then switch
// to a dense compensated array — the common case for wide adders whose
// approximate stages sit in the low bits (width >= 32 keeps a tiny span
// even though 2^65 values are representable).  Convolution of two
// *independent* error PMFs (block-composed adders, repeated datapath use)
// additionally routes through a radix-2 FFT once the naive cost passes
// `PmfOptions::fft_threshold`; see DESIGN.md for the switchover
// rationale.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::analysis {

/// Tuning knobs for PMF representation switchover and safety rails.
struct PmfOptions {
  /// Accumulate a mixture densely when the destination value span
  /// (max - min + 1) is at most this many slots.  16 bytes/slot
  /// (compensated accumulator), so the default costs at most 1 MiB.
  std::size_t dense_threshold = std::size_t{1} << 16;
  /// convolve() switches from the exact naive product to FFT when
  /// support(a) * support(b) exceeds this (and the result span is
  /// dense-representable).  The FFT path is accurate to ~1e-14 relative;
  /// set to SIZE_MAX to force the exact path.
  std::size_t fft_threshold = std::size_t{1} << 16;
  /// Hard cap on any intermediate or final support size; propagation
  /// throws std::length_error beyond it instead of consuming unbounded
  /// memory on adversarial cells.
  std::size_t max_support = std::size_t{1} << 22;
};

/// A sparse signed-magnitude probability mass function over int64 error
/// values.  Entries are strictly sorted by value; zero-probability
/// entries are never stored, so every stored value is reachable with
/// positive probability.
class ErrorPmf {
 public:
  struct Entry {
    std::int64_t value = 0;
    double probability = 0.0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  using Entries = std::vector<Entry>;

  /// One weighted, shifted operand of a mixture:
  ///   contribution = scale * shift(*pmf, offset).
  struct Term {
    const ErrorPmf* pmf = nullptr;
    double scale = 0.0;
    std::int64_t offset = 0;
  };

  ErrorPmf() = default;  // zero measure (no mass)

  /// Single-point distribution.
  [[nodiscard]] static ErrorPmf point_mass(std::int64_t value,
                                           double probability = 1.0);

  /// Builds a PMF from arbitrary (value, probability) pairs: sorts,
  /// merges duplicates with compensated addition, drops zero-probability
  /// points.  Throws std::invalid_argument on negative probabilities.
  [[nodiscard]] static ErrorPmf from_entries(Entries entries);

  /// Kahan-compensated weighted sum of shifted PMFs — the segmented-
  /// convolution primitive behind the per-stage propagation.  Picks the
  /// dense accumulator when the destination span fits
  /// `options.dense_threshold`, the sparse sort-merge otherwise; both
  /// orders are deterministic and produce bit-identical sums.  Throws
  /// std::length_error when the result support exceeds
  /// `options.max_support`.
  [[nodiscard]] static ErrorPmf mixture(std::span<const Term> terms,
                                        const PmfOptions& options = {});

  /// Distribution of a.err + b.err for *independent* error sources
  /// (e.g. disjoint sub-adder blocks).  Exact naive product below
  /// `options.fft_threshold`, radix-2 FFT above it.
  [[nodiscard]] static ErrorPmf convolve(const ErrorPmf& a, const ErrorPmf& b,
                                         const PmfOptions& options = {});

  [[nodiscard]] const Entries& entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t support_size() const noexcept {
    return entries_.size();
  }
  /// Smallest / largest value carrying mass.  Precondition: !empty().
  [[nodiscard]] std::int64_t min_value() const noexcept {
    return entries_.front().value;
  }
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return entries_.back().value;
  }

  /// Total mass (compensated).  1.0 (within float error) for a PMF,
  /// less for a conditioned segment mid-propagation.
  [[nodiscard]] double total_mass() const noexcept;
  /// Mass at exactly `value` (binary search; 0.0 when absent).
  [[nodiscard]] double probability_of(std::int64_t value) const noexcept;

  /// P(err != 0) — the value-level error rate.  Summed directly over the
  /// nonzero support (compensated), not computed as 1 - P(0).
  [[nodiscard]] double error_rate() const noexcept;
  /// E[err].
  [[nodiscard]] double mean_error() const noexcept;
  /// E[|err|] — the mean error distance (MED).
  [[nodiscard]] double mean_error_distance() const noexcept;
  /// E[err^2] — the mean squared error (MSE).
  [[nodiscard]] double mean_squared_error() const noexcept;
  /// The worst error in the support under sim::worse_error's total order
  /// (larger magnitude wins, magnitude ties resolve to the negative
  /// error).  0 for an empty or exact distribution — matching the
  /// simulators' accumulator identity.
  [[nodiscard]] std::int64_t worst_case_error() const noexcept;
  /// Shannon entropy of the distribution in bits.
  [[nodiscard]] double entropy_bits() const noexcept;
  /// Peak signal-to-noise ratio against the exact adder for an N-bit
  /// output range: 10*log10(peak^2 / MSE) with peak = 2^width - 1 (the
  /// same peak^2/MSE convention apps/image.cpp uses with peak = 255).
  /// +infinity when MSE == 0.
  [[nodiscard]] double psnr_db(std::size_t width) const noexcept;
  /// The k highest-probability mass points, ordered by descending
  /// probability (value ascending on ties) — the run-report projection.
  [[nodiscard]] Entries top_mass_points(std::size_t k) const;

 private:
  explicit ErrorPmf(Entries entries) noexcept
      : entries_(std::move(entries)) {}

  Entries entries_;  // strictly ascending by value, probabilities > 0
};

/// Propagation state: one conditioned error PMF per joint carry pair
/// (approximate carry ca, exact carry ce), indexed `(ca << 1) | ce` like
/// the moment DP.  `joint[j].total_mass()` is P(reaching pair j), so the
/// four masses always sum to 1.
struct ErrorPmfState {
  std::array<ErrorPmf, 4> joint{};
  std::size_t stage = 0;  // stages absorbed so far
};

/// Initial state before stage 0: err = 0 with the carry-in split between
/// the (0,0) and (1,1) pairs.
[[nodiscard]] ErrorPmfState make_error_pmf_state(double p_cin);

/// Absorbs one stage: shifts each (source pair, operand combination)
/// segment by its error delta and mixes into the destination pairs.
/// `stage` index comes from the state; throws std::length_error past 62
/// stages (the carry-out weight 2^63 would overflow the signed error).
void advance_error_pmf(ErrorPmfState& state, const adders::AdderCell& cell,
                       double p_a, double p_b,
                       const PmfOptions& options = {});

/// Merges the four segments into the final error PMF, folding the
/// carry-out difference (ca - ce) * 2^stage into the shift.
[[nodiscard]] ErrorPmf finalize_error_pmf(const ErrorPmfState& state,
                                          const PmfOptions& options = {});

/// Convenience driver: full-width propagation for a chain + profile.
[[nodiscard]] ErrorPmf propagate_error_pmf(const multibit::AdderChain& chain,
                                           const multibit::InputProfile& profile,
                                           const PmfOptions& options = {});

}  // namespace sealpaa::analysis

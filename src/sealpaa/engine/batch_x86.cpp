// Runtime-dispatched AVX2/AVX-512 FMA kernels for the SoA batch
// recursion's kFast mode, mirroring the sim/bitsliced_x86.cpp pattern:
// portable fallbacks live in this file too, every entry point re-checks
// the SEALPAA_FORCE_KERNEL cap (one relaxed atomic load), and non-x86
// builds compile only the portable branch.
//
// Per stage each lane applies a 2x2 linear map whose coefficients are
// gathered from the stage's candidate table by the lane's choice byte:
//
//   c0' = t00*c0 + t01*c1
//   c1' = t10*c0 + t11*c1
//
// The vector kernels compute t0x*c0 with a multiply and fold t1x*c1 in
// with one FMA, so each product rounds once and the sum rounds once —
// the same shape as the portable expression, within FP-contraction
// differences.  All kFast variants therefore agree with each other and
// with kStrict to the documented ~1e-12 relative tolerance (pinned by
// tests/test_engine.cpp across every dispatch level).
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "sealpaa/engine/batch_evaluator.hpp"

namespace sealpaa::engine {

namespace {

void advance_lanes_portable(const double* t, const std::uint8_t* choices,
                            std::size_t n, double* c0, double* c1) noexcept {
  for (std::size_t l = 0; l < n; ++l) {
    const double* tc = t + static_cast<std::size_t>(choices[l]) * 6;
    const double next0 = tc[0] * c0[l] + tc[1] * c1[l];
    const double next1 = tc[2] * c0[l] + tc[3] * c1[l];
    c0[l] = next0;
    c1[l] = next1;
  }
}

void final_lanes_portable(const double* t, const std::uint8_t* choices,
                          std::size_t n, const double* c0, const double* c1,
                          double* out) noexcept {
  for (std::size_t l = 0; l < n; ++l) {
    const double* tc = t + static_cast<std::size_t>(choices[l]) * 6;
    out[l] = tc[4] * c0[l] + tc[5] * c1[l];
  }
}

}  // namespace

}  // namespace sealpaa::engine

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace sealpaa::engine {

namespace {

// GCC's plain _mm(256|512)_i32gather_pd intrinsics feed an uninitialized
// "old value" register into the masked builtin and trip
// -Wmaybe-uninitialized; the explicit-source masked forms with an
// all-ones mask are the same instruction without the warning.
[[gnu::target("avx2")]]
inline __m256d gather4(const double* base, __m128i idx) noexcept {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

[[gnu::target("avx512f")]]
inline __m512d gather8(const double* base, __m256i idx) noexcept {
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                  static_cast<__mmask8>(0xFF), idx, base, 8);
}

// 4 lanes per iteration: the four choice bytes widen to dword indices,
// four gathers pull the stage coefficients, one mul + one FMA per output
// row.  The tail (< 4 lanes) runs the portable loop.
[[gnu::target("avx2,fma")]]
void advance_lanes_avx2(const double* t, const std::uint8_t* choices,
                        std::size_t n, double* c0, double* c1) noexcept {
  const __m128i six = _mm_set1_epi32(6);
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, choices + l, sizeof(packed));
    const __m128i idx = _mm_mullo_epi32(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed))), six);
    const __m256d t00 = gather4(t + 0, idx);
    const __m256d t01 = gather4(t + 1, idx);
    const __m256d t10 = gather4(t + 2, idx);
    const __m256d t11 = gather4(t + 3, idx);
    const __m256d v0 = _mm256_loadu_pd(c0 + l);
    const __m256d v1 = _mm256_loadu_pd(c1 + l);
    _mm256_storeu_pd(c0 + l,
                     _mm256_fmadd_pd(t01, v1, _mm256_mul_pd(t00, v0)));
    _mm256_storeu_pd(c1 + l,
                     _mm256_fmadd_pd(t11, v1, _mm256_mul_pd(t10, v0)));
  }
  advance_lanes_portable(t, choices + l, n - l, c0 + l, c1 + l);
}

[[gnu::target("avx2,fma")]]
void final_lanes_avx2(const double* t, const std::uint8_t* choices,
                      std::size_t n, const double* c0, const double* c1,
                      double* out) noexcept {
  const __m128i six = _mm_set1_epi32(6);
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, choices + l, sizeof(packed));
    const __m128i idx = _mm_mullo_epi32(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed))), six);
    const __m256d u0 = gather4(t + 4, idx);
    const __m256d u1 = gather4(t + 5, idx);
    const __m256d v0 = _mm256_loadu_pd(c0 + l);
    const __m256d v1 = _mm256_loadu_pd(c1 + l);
    _mm256_storeu_pd(out + l,
                     _mm256_fmadd_pd(u1, v1, _mm256_mul_pd(u0, v0)));
  }
  final_lanes_portable(t, choices + l, n - l, c0 + l, c1 + l, out + l);
}

// 8 lanes per iteration; same structure, zmm registers.  avx512f implies
// the avx2 forms used for the index arithmetic.
[[gnu::target("avx512f,avx2,fma")]]
void advance_lanes_avx512(const double* t, const std::uint8_t* choices,
                          std::size_t n, double* c0, double* c1) noexcept {
  const __m256i six = _mm256_set1_epi32(6);
  std::size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    std::uint64_t packed;
    std::memcpy(&packed, choices + l, sizeof(packed));
    const __m256i idx = _mm256_mullo_epi32(
        _mm256_cvtepu8_epi32(
            _mm_cvtsi64_si128(static_cast<long long>(packed))),
        six);
    const __m512d t00 = gather8(t + 0, idx);
    const __m512d t01 = gather8(t + 1, idx);
    const __m512d t10 = gather8(t + 2, idx);
    const __m512d t11 = gather8(t + 3, idx);
    const __m512d v0 = _mm512_loadu_pd(c0 + l);
    const __m512d v1 = _mm512_loadu_pd(c1 + l);
    _mm512_storeu_pd(c0 + l,
                     _mm512_fmadd_pd(t01, v1, _mm512_mul_pd(t00, v0)));
    _mm512_storeu_pd(c1 + l,
                     _mm512_fmadd_pd(t11, v1, _mm512_mul_pd(t10, v0)));
  }
  advance_lanes_avx2(t, choices + l, n - l, c0 + l, c1 + l);
}

[[gnu::target("avx512f,avx2,fma")]]
void final_lanes_avx512(const double* t, const std::uint8_t* choices,
                        std::size_t n, const double* c0, const double* c1,
                        double* out) noexcept {
  const __m256i six = _mm256_set1_epi32(6);
  std::size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    std::uint64_t packed;
    std::memcpy(&packed, choices + l, sizeof(packed));
    const __m256i idx = _mm256_mullo_epi32(
        _mm256_cvtepu8_epi32(
            _mm_cvtsi64_si128(static_cast<long long>(packed))),
        six);
    const __m512d u0 = gather8(t + 4, idx);
    const __m512d u1 = gather8(t + 5, idx);
    const __m512d v0 = _mm512_loadu_pd(c0 + l);
    const __m512d v1 = _mm512_loadu_pd(c1 + l);
    _mm512_storeu_pd(out + l,
                     _mm512_fmadd_pd(u1, v1, _mm512_mul_pd(u0, v0)));
  }
  final_lanes_avx2(t, choices + l, n - l, c0 + l, c1 + l, out + l);
}

util::KernelLevel cpu_kernel_cap() noexcept {
  static const util::KernelLevel cap = [] {
    if (__builtin_cpu_supports("avx512f") != 0) {
      return util::KernelLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2") != 0 &&
        __builtin_cpu_supports("fma") != 0) {
      return util::KernelLevel::kAvx2;
    }
    return util::KernelLevel::kScalar;
  }();
  return cap;
}

}  // namespace

util::KernelLevel active_batch_kernel() noexcept {
  const util::KernelLevel cap = cpu_kernel_cap();
  const auto forced = util::forced_kernel();
  if (forced && static_cast<int>(*forced) < static_cast<int>(cap)) {
    return *forced;
  }
  return cap;
}

namespace detail {

void advance_lanes_fast(const double* t, const std::uint8_t* choices,
                        std::size_t n, double* c0, double* c1) noexcept {
  switch (active_batch_kernel()) {
    case util::KernelLevel::kAvx512:
      advance_lanes_avx512(t, choices, n, c0, c1);
      return;
    case util::KernelLevel::kAvx2:
      advance_lanes_avx2(t, choices, n, c0, c1);
      return;
    case util::KernelLevel::kScalar:
      break;
  }
  advance_lanes_portable(t, choices, n, c0, c1);
}

void final_lanes_fast(const double* t, const std::uint8_t* choices,
                      std::size_t n, const double* c0, const double* c1,
                      double* out) noexcept {
  switch (active_batch_kernel()) {
    case util::KernelLevel::kAvx512:
      final_lanes_avx512(t, choices, n, c0, c1, out);
      return;
    case util::KernelLevel::kAvx2:
      final_lanes_avx2(t, choices, n, c0, c1, out);
      return;
    case util::KernelLevel::kScalar:
      break;
  }
  final_lanes_portable(t, choices, n, c0, c1, out);
}

}  // namespace detail

}  // namespace sealpaa::engine

#else  // non-x86 or unsupported compiler: portable paths only.

namespace sealpaa::engine {

util::KernelLevel active_batch_kernel() noexcept {
  return util::KernelLevel::kScalar;
}

namespace detail {

void advance_lanes_fast(const double* t, const std::uint8_t* choices,
                        std::size_t n, double* c0, double* c1) noexcept {
  advance_lanes_portable(t, choices, n, c0, c1);
}

void final_lanes_fast(const double* t, const std::uint8_t* choices,
                      std::size_t n, const double* c0, const double* c1,
                      double* out) noexcept {
  final_lanes_portable(t, choices, n, c0, c1, out);
}

}  // namespace detail

}  // namespace sealpaa::engine

#endif

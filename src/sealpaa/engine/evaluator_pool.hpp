// Keyed pool of ChainEvaluators — the amortizable state behind the
// batch analysis service.
//
// A ChainEvaluator's prefix cache is only useful while the (profile,
// candidate palette) pair stays fixed, but a request stream mixes
// widths and input probabilities.  The pool maps each distinct profile
// to its own evaluator and keeps the most recently used ones alive, so
// consecutive requests against the same profile — the common case for a
// design-sweep client — reuse a hot prefix cache instead of rebuilding
// M/K/L matrices and recomputing every chain from bit 0.
//
// Single-threaded by design: the service's dispatch thread acquires all
// evaluators a batch needs before fanning evaluation tasks out, and
// each evaluator is only ever probed from one task at a time.
// `acquire` returns shared ownership so an evaluator evicted while a
// batch holds it stays valid until the batch completes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sealpaa/engine/chain_evaluator.hpp"

namespace sealpaa::engine {

struct EvaluatorPoolOptions {
  /// Most-recently-used evaluators kept alive; older ones are dropped
  /// (their cache stats are folded into the retired aggregate).  Must
  /// be >= 1.
  std::size_t max_evaluators = 32;
  /// Forwarded to every ChainEvaluator the pool constructs.
  ChainEvaluatorOptions evaluator{};
};

class EvaluatorPool {
 public:
  /// `palette` is the fixed candidate cell set shared by every evaluator
  /// (chains are expressed as palette indices).  Throws
  /// std::invalid_argument when the palette is empty or the option
  /// limits are zero.
  explicit EvaluatorPool(std::vector<adders::AdderCell> palette,
                         EvaluatorPoolOptions options = {});

  /// The evaluator for `profile`, constructed on first use.  Marks the
  /// entry most recently used; evicts the least recently used entry
  /// beyond `max_evaluators`.
  [[nodiscard]] std::shared_ptr<ChainEvaluator> acquire(
      const multibit::InputProfile& profile);

  /// Palette index of the cell named `name`; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> candidate_index(
      std::string_view name) const;

  [[nodiscard]] const std::vector<adders::AdderCell>& palette() const noexcept {
    return palette_;
  }

  /// Live evaluators currently held.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Evaluators constructed over the pool's lifetime.
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }
  /// Evaluators dropped by the LRU bound.
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }
  /// acquire() calls answered by a live evaluator.
  [[nodiscard]] std::uint64_t pool_hits() const noexcept { return pool_hits_; }

  /// Sum of every evaluator's prefix-cache stats: the live ones plus
  /// everything folded in at eviction time.  (Activity on an evicted
  /// evaluator still shared by an in-flight batch is not re-counted.)
  [[nodiscard]] CacheStats aggregate_stats() const;

  /// Same aggregation over the PMF prefix caches.
  [[nodiscard]] CacheStats aggregate_pmf_stats() const;

  /// Same aggregation over the SoA batch counters (evaluate_batch /
  /// score_extensions lanes) — the pool-level proof that service
  /// batches ran lane-parallel.
  [[nodiscard]] BatchStats aggregate_batch_stats() const;

  /// Drops every live evaluator (their stats move to the retired
  /// aggregate; lifetime counters are kept).
  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<ChainEvaluator> evaluator;
  };

  [[nodiscard]] static std::string key_of(
      const multibit::InputProfile& profile);
  void retire(const Entry& entry);

  std::vector<adders::AdderCell> palette_;
  EvaluatorPoolOptions options_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats retired_;
  CacheStats retired_pmf_;
  BatchStats retired_batch_;
  std::uint64_t created_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t pool_hits_ = 0;
};

}  // namespace sealpaa::engine

// Resumable form of the paper's recursion (§4, Algorithm 1).
//
// `RecursiveAnalyzer::analyze` runs the carry recursion start-to-finish
// for one fixed chain.  Design-space exploration wants something
// stronger: thousands of candidate chains that share long prefixes, where
// re-deriving the shared stages per chain turns an O(N) method into
// O(N) *per candidate stage*.  `IncrementalAnalyzer` exposes the
// recursion as an explicit state machine — `push_stage` advances one
// stage, `pop`/`rewind` back out of a partial design, `finish` closes the
// chain with Equation 12 — so a DFS over candidate assignments pays O(1)
// per visited stage instead of O(N) per visited chain.
//
// Every arithmetic step is the exact advance_stage / final_success call
// the batch analyzer makes, in the same order, so results are
// bit-identical to `RecursiveAnalyzer::analyze` (see
// tests/test_engine.cpp), not merely within tolerance.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::engine {

/// Memoizes the M/K/L analysis matrices per distinct truth table, so a
/// search touching the same cells millions of times derives each cell's
/// matrices exactly once.  An 8-row cell packs into 16 bits (sum column
/// low byte, carry column high byte), which is the cache key.
class MklCache {
 public:
  /// 16-bit truth-table fingerprint: bit r is row r's sum, bit 8+r is
  /// row r's carry-out.  Cells with equal fingerprints are the same cell
  /// for analysis purposes (names are irrelevant to the matrices).
  [[nodiscard]] static std::uint16_t key_of(
      const adders::AdderCell& cell) noexcept;

  /// Returns the cell's matrices, deriving them on first use.  The
  /// reference stays valid for the lifetime of the cache.
  const analysis::MklMatrices& of(const adders::AdderCell& cell);

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  /// from_cell derivations actually performed (== size()).
  [[nodiscard]] std::uint64_t derivations() const noexcept {
    return derivations_;
  }

 private:
  std::unordered_map<std::uint16_t, analysis::MklMatrices> table_;
  std::uint64_t derivations_ = 0;
};

/// The recursion as a resumable stack machine over a fixed input profile.
///
///   IncrementalAnalyzer inc(profile);
///   inc.push_stage(lpaa6);          // stage 0
///   inc.push_stage(lpaa1);          // stage 1
///   ...                             // until depth() == width()
///   auto result = inc.finish();     // == RecursiveAnalyzer::analyze
///   inc.rewind(1);                  // back to the 1-stage prefix
///
/// Not thread-safe; use one instance per thread (the exhaustive DSE runs
/// one per shard).
class IncrementalAnalyzer {
 public:
  /// `mkl_cache` may be shared across analyzers (single-threaded use);
  /// when null an internal cache is used.
  explicit IncrementalAnalyzer(multibit::InputProfile profile,
                               MklCache* mkl_cache = nullptr);

  [[nodiscard]] std::size_t width() const noexcept {
    return profile_.width();
  }
  /// Number of stages currently pushed.
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }
  [[nodiscard]] const multibit::InputProfile& profile() const noexcept {
    return profile_;
  }

  /// Advances the carry state through one stage (Equations 10-11) and
  /// returns the post-stage state.  Throws std::logic_error when the
  /// chain is already full.
  const analysis::CarryState& push_stage(const adders::AdderCell& cell);
  /// Fast path when the caller already holds the cell's matrices.
  const analysis::CarryState& push_stage(const analysis::MklMatrices& mkl);

  /// Removes the most recent stage.  Throws std::logic_error when empty.
  void pop();
  /// Pops until depth() == `depth`.  Throws std::invalid_argument when
  /// `depth` exceeds the current depth.
  void rewind(std::size_t depth);

  /// Success-filtered carry state after the `depth` pushed stages
  /// (depth 0 = the Equation 5 initial state from P(Cin)).
  [[nodiscard]] const analysis::CarryState& carry_at(std::size_t depth) const;
  /// State after the most recent stage.
  [[nodiscard]] const analysis::CarryState& carry() const {
    return carry_at(depth());
  }

  /// P(Success) if `mkl` closed the chain as its final stage (Equation
  /// 12), *without* pushing it.  Requires depth() == width() - 1.  Raw
  /// dot product — no clamping — exactly like the batch analyzer's
  /// scoring path.
  [[nodiscard]] double final_success_with(
      const analysis::MklMatrices& mkl) const;

  /// Closes the chain: requires depth() == width().  Bit-identical to
  /// `RecursiveAnalyzer::analyze` on the same stage sequence, including
  /// the trace when `record_trace` is set.
  [[nodiscard]] analysis::AnalysisResult finish(
      bool record_trace = false) const;

  /// Enables joint-carry error-PMF tracking: every subsequent
  /// push_stage(cell) also advances an analysis::ErrorPmfState, so the
  /// DFS can score leaves on MED/MSE instead of P(Error).  Must be
  /// called at depth 0 (std::logic_error otherwise).  While tracking,
  /// the matrices-only push_stage(mkl) fast path throws — the M/K/L
  /// matrices do not determine the cell's sum column, which the error
  /// deltas need.
  void enable_pmf_tracking(const analysis::PmfOptions& options = {});
  [[nodiscard]] bool pmf_tracking() const noexcept { return track_pmf_; }

  /// Joint-carry PMF state after the `depth` pushed stages.  Requires
  /// tracking.
  [[nodiscard]] const analysis::ErrorPmfState& pmf_state_at(
      std::size_t depth) const;
  /// Finalized error PMF of the pushed prefix (carry-out difference
  /// folded at the current depth).  Requires tracking.
  [[nodiscard]] analysis::ErrorPmf error_pmf() const;

 private:
  struct Frame {
    analysis::MklMatrices mkl;   // this stage's matrices
    analysis::CarryState carry;  // state after this stage
    analysis::ErrorPmfState pmf;  // after this stage; tracking only
  };

  multibit::InputProfile profile_;
  analysis::CarryState base_;  // Equation 5 initial state
  std::vector<Frame> stack_;
  MklCache owned_cache_;
  MklCache* cache_;  // owned_cache_ or the shared one
  bool track_pmf_ = false;
  analysis::PmfOptions pmf_options_;
  analysis::ErrorPmfState pmf_base_;  // depth-0 state; tracking only
};

}  // namespace sealpaa::engine

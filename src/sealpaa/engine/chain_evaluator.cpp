#include "sealpaa/engine/chain_evaluator.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::engine {

namespace {

// Slot indices are uint32; a larger capacity could never be addressed
// (and could never fit in memory anyway).
constexpr std::size_t kMaxCapacity = std::size_t{1} << 30;

// FNV-1a, folded byte by byte.  Chosen over std::hash because prefix
// hashes nest: hashing the key once left-to-right yields the hash of
// every prefix depth along the way, so the deepest-first probe loop does
// no hashing at all.
constexpr std::uint64_t kFnvBasis = 0xcbf2'9ce4'8422'2325ULL;
constexpr std::uint64_t kFnvPrime = 0x0000'0100'0000'01b3ULL;

// FNV's low bits are weak on short inputs; a splitmix64-style finalizer
// spreads them before they pick the table bucket.
constexpr std::uint64_t mix(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51'afd7'ed55'8ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ChainEvaluator::ChainEvaluator(multibit::InputProfile profile,
                               std::vector<adders::AdderCell> candidates,
                               ChainEvaluatorOptions options)
    : profile_(std::move(profile)),
      candidates_(std::move(candidates)),
      base_{1.0 - profile_.p_cin(), profile_.p_cin()},
      batch_(profile_, candidates_),
      capacity_(std::min(options.cache_capacity, kMaxCapacity)),
      key_stride_(profile_.width()),
      pmf_capacity_(options.pmf_cache_capacity),
      pmf_options_(options.pmf) {
  if (candidates_.empty()) {
    throw std::invalid_argument("ChainEvaluator: no candidate cells");
  }
  if (candidates_.size() > 255) {
    throw std::invalid_argument(
        "ChainEvaluator: at most 255 candidate cells (prefix keys pack "
        "choice indices into bytes)");
  }
  mkls_.reserve(candidates_.size());
  for (const adders::AdderCell& cell : candidates_) {
    mkls_.push_back(analysis::MklMatrices::from_cell(cell));
  }
  key_scratch_.reserve(profile_.width());
}

void ChainEvaluator::check_choice(std::size_t choice) const {
  if (choice >= candidates_.size()) {
    throw std::out_of_range("ChainEvaluator: choice index " +
                            std::to_string(choice) + " out of range (" +
                            std::to_string(candidates_.size()) +
                            " candidates)");
  }
}

std::string_view ChainEvaluator::key_of(std::uint32_t slot) const noexcept {
  return {key_pool_.data() + static_cast<std::size_t>(slot) * key_stride_,
          slots_[slot].len};
}

std::uint32_t ChainEvaluator::find_slot(std::string_view key,
                                        std::uint64_t hash) const noexcept {
  if (table_.empty()) return kNil;
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    const std::uint32_t slot = table_[i];
    if (slot == kNil) return kNil;
    if (slots_[slot].hash == hash && key_of(slot) == key) return slot;
  }
}

void ChainEvaluator::unlink(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    lru_head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    lru_tail_ = s.prev;
  }
}

void ChainEvaluator::link_front(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void ChainEvaluator::touch(std::uint32_t slot) noexcept {
  if (slot == lru_head_) return;
  unlink(slot);
  link_front(slot);
}

// Backward-shift deletion keeps linear probing tombstone-free: after
// emptying the victim's table cell, every displaced entry in the cluster
// behind it is moved back over the gap.
void ChainEvaluator::table_erase(std::uint32_t slot) noexcept {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = slots_[slot].hash & mask;
  while (table_[i] != slot) i = (i + 1) & mask;
  std::size_t gap = i;
  for (std::size_t j = (gap + 1) & mask; table_[j] != kNil;
       j = (j + 1) & mask) {
    const std::size_t ideal = slots_[table_[j]].hash & mask;
    // Move table_[j] into the gap unless its probe path starts after the
    // gap (i.e. the gap lies outside [ideal, j] in circular order).
    const bool gap_in_path = gap <= j ? (ideal <= gap || ideal > j)
                                      : (ideal <= gap && ideal > j);
    if (gap_in_path) {
      table_[gap] = table_[j];
      gap = j;
    }
  }
  table_[gap] = kNil;
}

void ChainEvaluator::grow_table() {
  const std::size_t size = table_.empty() ? 64 : table_.size() * 2;
  table_.assign(size, kNil);
  const std::size_t mask = size - 1;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    std::size_t i = slots_[slot].hash & mask;
    while (table_[i] != kNil) i = (i + 1) & mask;
    table_[i] = slot;
  }
}

void ChainEvaluator::insert_prefix(std::string_view key, std::uint64_t hash,
                                   const analysis::CarryState& carry) {
  ++stats_.insertions;
  std::uint32_t slot;
  if (live_slots_ >= capacity_) {
    // Recycle the LRU victim's slot in place.
    slot = lru_tail_;
    table_erase(slot);
    unlink(slot);
    ++stats_.evictions;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    key_pool_.resize(key_pool_.size() + key_stride_);
    ++live_slots_;
    // Keep the table at most half full so probe chains stay short.
    if ((live_slots_ + 1) * 2 > table_.size()) grow_table();
  }
  Slot& s = slots_[slot];
  s.hash = hash;
  s.len = static_cast<std::uint32_t>(key.size());
  s.carry = carry;
  std::memcpy(key_pool_.data() + static_cast<std::size_t>(slot) * key_stride_,
              key.data(), key.size());
  const std::size_t mask = table_.size() - 1;
  std::size_t i = s.hash & mask;
  while (table_[i] != kNil) i = (i + 1) & mask;
  table_[i] = slot;
  link_front(slot);
}

analysis::CarryState ChainEvaluator::carry_after(
    std::span<const std::size_t> choices) {
  if (choices.size() > width()) {
    throw std::invalid_argument("ChainEvaluator::carry_after: " +
                                std::to_string(choices.size()) +
                                " choices exceed width " +
                                std::to_string(width()));
  }
  const std::size_t len = choices.size();
  key_scratch_.clear();
  hash_scratch_.resize(len + 1);
  std::uint64_t h = kFnvBasis;
  hash_scratch_[0] = mix(h);
  for (std::size_t i = 0; i < len; ++i) {
    check_choice(choices[i]);
    key_scratch_.push_back(static_cast<char>(choices[i]));
    h = (h ^ (choices[i] & 0xFFu)) * kFnvPrime;
    hash_scratch_[i + 1] = mix(h);
  }

  // Probe for the longest cached prefix, deepest first.  The rolling
  // hash pass above already produced every depth's hash, including the
  // ones needed for the inserts on the way forward.
  std::size_t found = 0;
  analysis::CarryState carry = base_;
  if (capacity_ > 0) {
    for (std::size_t d = len; d >= 1; --d) {
      const std::string_view key(key_scratch_.data(), d);
      const std::uint32_t slot = find_slot(key, hash_scratch_[d]);
      if (slot != kNil) {
        ++stats_.hits;
        touch(slot);
        found = d;
        carry = slots_[slot].carry;
        break;
      }
      ++stats_.misses;
    }
  }

  // Advance from the deepest known state, caching every new prefix.
  for (std::size_t d = found; d < len; ++d) {
    carry = analysis::advance_stage(mkls_[choices[d]], profile_.p_a(d),
                                    profile_.p_b(d), carry);
    ++stats_.stages_computed;
    if (capacity_ > 0) {
      insert_prefix(std::string_view(key_scratch_.data(), d + 1),
                    hash_scratch_[d + 1], carry);
    }
  }
  return carry;
}

double ChainEvaluator::final_success(std::span<const std::size_t> prefix,
                                     std::size_t last_choice) {
  if (prefix.size() + 1 != width()) {
    throw std::invalid_argument(
        "ChainEvaluator::final_success: prefix of " +
        std::to_string(prefix.size()) + " stages does not leave exactly one "
        "stage of width " + std::to_string(width()));
  }
  check_choice(last_choice);
  const analysis::CarryState carry = carry_after(prefix);
  const std::size_t i = width() - 1;
  return analysis::final_success(mkls_[last_choice], profile_.p_a(i),
                                 profile_.p_b(i), carry);
}

analysis::AnalysisResult ChainEvaluator::evaluate(
    std::span<const std::size_t> choices) {
  const std::size_t n = width();
  if (choices.size() != n) {
    throw std::invalid_argument(
        "ChainEvaluator::evaluate: chain of " +
        std::to_string(choices.size()) + " stages does not match width " +
        std::to_string(n));
  }
  check_choice(choices[n - 1]);
  ++stats_.chains_evaluated;

  const analysis::CarryState before_last = carry_after(choices.first(n - 1));
  const analysis::MklMatrices& last = mkls_[choices[n - 1]];
  const double p_a = profile_.p_a(n - 1);
  const double p_b = profile_.p_b(n - 1);

  analysis::AnalysisResult result;
  result.p_success = prob::require_probability(
      analysis::final_success(last, p_a, p_b, before_last),
      "ChainEvaluator P(Succ)");
  result.p_error = 1.0 - result.p_success;
  // The last stage's carry advance is "NR" for P(Succ) but part of the
  // full result (composition into wider chains); it is computed directly
  // and not cached — no later prefix can extend a full-width chain.
  result.final_carry =
      analysis::advance_stage(last, p_a, p_b, before_last);
  ++stats_.stages_computed;
  return result;
}

std::vector<analysis::AnalysisResult> ChainEvaluator::evaluate_batch(
    std::span<const std::span<const std::size_t>> chains) {
  const std::size_t n = width();
  const std::size_t count = chains.size();
  std::vector<analysis::AnalysisResult> results(count);
  if (count == 0) return results;
  if (n == 0) {
    throw std::invalid_argument(
        "ChainEvaluator::evaluate_batch: zero-width profile");
  }
  for (const std::span<const std::size_t> chain : chains) {
    if (chain.size() != n) {
      throw std::invalid_argument(
          "ChainEvaluator::evaluate_batch: chain of " +
          std::to_string(chain.size()) + " stages does not match width " +
          std::to_string(n));
    }
    for (const std::size_t c : chain) check_choice(c);
  }
  stats_.chains_evaluated += count;
  batch_.note_batch(count);

  // Per-lane key bytes and the rolling prefix hashes of every depth —
  // the same FNV/mix scheme carry_after uses, so batch-computed prefixes
  // and sequentially computed ones share one cache namespace.
  std::vector<char> keys(count * n);
  std::vector<std::uint64_t> hashes(count * (n + 1));
  for (std::size_t l = 0; l < count; ++l) {
    char* key = keys.data() + l * n;
    std::uint64_t* hs = hashes.data() + l * (n + 1);
    std::uint64_t h = kFnvBasis;
    hs[0] = mix(h);
    for (std::size_t i = 0; i < n; ++i) {
      key[i] = static_cast<char>(chains[l][i]);
      h = (h ^ (chains[l][i] & 0xFFu)) * kFnvPrime;
      hs[i + 1] = mix(h);
    }
  }

  ChainBatchEvaluator::Lanes lanes;
  batch_.init_lanes(lanes, count);
  std::vector<std::uint32_t> pending;    // lanes advancing this stage
  std::vector<std::uint8_t> pending_c;   // their choice bytes
  std::vector<std::uint8_t> last(count); // final-stage choices
  // Followers adopt a leader lane's freshly advanced state instead of
  // recomputing the shared prefix; leaders are found by mixed hash with
  // a key-bytes check, so a 64-bit collision degrades to duplicate work,
  // never to a wrong adoption.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> followers;
  std::unordered_map<std::uint64_t, std::uint32_t> leaders;

  for (std::size_t d = 0; d + 1 < n; ++d) {
    pending.clear();
    pending_c.clear();
    followers.clear();
    leaders.clear();
    for (std::size_t l = 0; l < count; ++l) {
      const std::string_view key(keys.data() + l * n, d + 1);
      const std::uint64_t hash = hashes[l * (n + 1) + d + 1];
      if (capacity_ > 0) {
        const std::uint32_t slot = find_slot(key, hash);
        if (slot != kNil) {
          ++stats_.hits;
          touch(slot);
          lanes.c0[l] = slots_[slot].carry.c0;
          lanes.c1[l] = slots_[slot].carry.c1;
          continue;
        }
        ++stats_.misses;
        const auto [it, inserted] =
            leaders.try_emplace(hash, static_cast<std::uint32_t>(l));
        if (!inserted &&
            std::string_view(keys.data() + it->second * n, d + 1) == key) {
          followers.emplace_back(static_cast<std::uint32_t>(l), it->second);
          continue;
        }
      }
      pending.push_back(static_cast<std::uint32_t>(l));
      pending_c.push_back(static_cast<std::uint8_t>(chains[l][d]));
    }
    if (!pending.empty()) {
      batch_.advance_from(d, lanes, pending, pending_c, batch_scratch_,
                          BatchMode::kStrict);
      stats_.stages_computed += pending.size();
      for (std::size_t j = 0; j < pending.size(); ++j) {
        const std::uint32_t l = pending[j];
        lanes.c0[l] = batch_scratch_.c0[j];
        lanes.c1[l] = batch_scratch_.c1[j];
        if (capacity_ > 0) {
          insert_prefix(std::string_view(keys.data() + l * n, d + 1),
                        hashes[l * (n + 1) + d + 1],
                        {lanes.c0[l], lanes.c1[l]});
        }
      }
    }
    for (const auto& [follower, leader] : followers) {
      lanes.c0[follower] = lanes.c0[leader];
      lanes.c1[follower] = lanes.c1[leader];
    }
  }

  // Final stage, all lanes together: Equation 12, then the last carry
  // advance — the exact call sequence of evaluate() per lane.
  std::vector<double> p_raw(count);
  for (std::size_t l = 0; l < count; ++l) {
    last[l] = static_cast<std::uint8_t>(chains[l][n - 1]);
  }
  batch_.final_success(lanes, last, p_raw, BatchMode::kStrict);
  batch_.advance(n - 1, last, lanes, BatchMode::kStrict);
  stats_.stages_computed += count;
  for (std::size_t l = 0; l < count; ++l) {
    results[l].p_success =
        prob::require_probability(p_raw[l], "ChainEvaluator P(Succ)");
    results[l].p_error = 1.0 - results[l].p_success;
    results[l].final_carry = {lanes.c0[l], lanes.c1[l]};
  }
  return results;
}

std::vector<double> ChainEvaluator::score_extensions(
    std::span<const std::vector<std::size_t>> parents,
    std::span<const Extension> extensions) {
  const std::size_t n = width();
  const std::size_t depth = parents.empty() ? 0 : parents.front().size();
  if (depth >= n) {
    throw std::invalid_argument(
        "ChainEvaluator::score_extensions: parent depth " +
        std::to_string(depth) + " leaves no stage to extend (width " +
        std::to_string(n) + ")");
  }
  for (const std::vector<std::size_t>& parent : parents) {
    if (parent.size() != depth) {
      throw std::invalid_argument(
          "ChainEvaluator::score_extensions: parents must share one depth");
    }
  }
  std::vector<double> out(extensions.size());
  if (extensions.empty()) return out;

  // Parent states go through carry_after: cache hits here are what keep
  // round-to-round prefix reuse (and its accounting) identical to the
  // per-extension path.  The raw FNV state is re-rolled per parent so
  // each extension's key hash is one multiply away.
  ChainBatchEvaluator::Lanes parent_lanes;
  parent_lanes.c0.resize(parents.size());
  parent_lanes.c1.resize(parents.size());
  std::vector<std::uint64_t> parent_fnv(parents.size());
  for (std::size_t p = 0; p < parents.size(); ++p) {
    const analysis::CarryState carry = carry_after(parents[p]);
    parent_lanes.c0[p] = carry.c0;
    parent_lanes.c1[p] = carry.c1;
    std::uint64_t h = kFnvBasis;
    for (const std::size_t c : parents[p]) {
      h = (h ^ (c & 0xFFu)) * kFnvPrime;
    }
    parent_fnv[p] = h;
  }

  std::vector<std::uint32_t> parent_idx(extensions.size());
  std::vector<std::uint8_t> choices(extensions.size());
  for (std::size_t e = 0; e < extensions.size(); ++e) {
    if (extensions[e].parent >= parents.size()) {
      throw std::out_of_range(
          "ChainEvaluator::score_extensions: extension parent " +
          std::to_string(extensions[e].parent) + " out of range (" +
          std::to_string(parents.size()) + " parents)");
    }
    check_choice(extensions[e].choice);
    parent_idx[e] = extensions[e].parent;
    choices[e] = extensions[e].choice;
  }
  batch_.note_batch(extensions.size());

  if (depth + 1 == n) {
    // Last stage: Equation 12 per extension, nothing cached — exactly
    // what final_success(parent, choice) computes after its parent probe.
    batch_.final_success_from(parent_lanes, parent_idx, choices, out,
                              BatchMode::kStrict);
    return out;
  }

  batch_.advance_from(depth, parent_lanes, parent_idx, choices,
                      batch_scratch_, BatchMode::kStrict);
  stats_.stages_computed += extensions.size();
  for (std::size_t e = 0; e < extensions.size(); ++e) {
    out[e] = batch_scratch_.c0[e] + batch_scratch_.c1[e];
    if (capacity_ == 0) continue;
    // Cache the advanced state under parent-key + choice, mirroring the
    // per-extension carry_after accounting: one probe (the miss that
    // precedes an insert, or a hit when a shared evaluator already holds
    // the key) per extension.
    const std::vector<std::size_t>& parent = parents[extensions[e].parent];
    key_scratch_.clear();
    for (const std::size_t c : parent) {
      key_scratch_.push_back(static_cast<char>(c));
    }
    key_scratch_.push_back(static_cast<char>(extensions[e].choice));
    const std::uint64_t hash =
        mix((parent_fnv[extensions[e].parent] ^ extensions[e].choice) *
            kFnvPrime);
    const std::string_view key(key_scratch_.data(), depth + 1);
    const std::uint32_t slot = find_slot(key, hash);
    if (slot != kNil) {
      ++stats_.hits;
      touch(slot);
      continue;
    }
    ++stats_.misses;
    insert_prefix(key, hash,
                  {batch_scratch_.c0[e], batch_scratch_.c1[e]});
  }
  return out;
}

void ChainEvaluator::pmf_insert(
    std::string_view key,
    std::shared_ptr<const analysis::ErrorPmfState> state) {
  ++pmf_stats_.insertions;
  if (pmf_index_.size() >= pmf_capacity_ && !pmf_lru_.empty()) {
    const PmfNode& victim = pmf_lru_.back();
    pmf_index_.erase(std::string_view(victim.key));
    pmf_lru_.pop_back();
    ++pmf_stats_.evictions;
  }
  pmf_lru_.push_front(PmfNode{std::string(key), std::move(state)});
  pmf_index_.emplace(std::string_view(pmf_lru_.front().key),
                     pmf_lru_.begin());
}

std::shared_ptr<const analysis::ErrorPmfState> ChainEvaluator::pmf_state_after(
    std::span<const std::size_t> choices) {
  if (choices.size() > width()) {
    throw std::invalid_argument("ChainEvaluator::pmf_state_after: " +
                                std::to_string(choices.size()) +
                                " choices exceed width " +
                                std::to_string(width()));
  }
  const std::size_t len = choices.size();
  std::string key;
  key.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    check_choice(choices[i]);
    key.push_back(static_cast<char>(choices[i]));
  }

  // Longest cached prefix, deepest first — same probe accounting as the
  // carry cache (one miss per depth tried).
  std::size_t found = 0;
  std::shared_ptr<const analysis::ErrorPmfState> state;
  if (pmf_capacity_ > 0) {
    for (std::size_t d = len; d >= 1; --d) {
      const auto it = pmf_index_.find(std::string_view(key.data(), d));
      if (it != pmf_index_.end()) {
        ++pmf_stats_.hits;
        pmf_lru_.splice(pmf_lru_.begin(), pmf_lru_, it->second);
        found = d;
        state = it->second->state;
        break;
      }
      ++pmf_stats_.misses;
    }
  }
  if (found == 0) {
    state = std::make_shared<const analysis::ErrorPmfState>(
        analysis::make_error_pmf_state(profile_.p_cin()));
  }

  // Advance from the deepest known state, caching every new prefix.
  for (std::size_t d = found; d < len; ++d) {
    auto next = std::make_shared<analysis::ErrorPmfState>(*state);
    analysis::advance_error_pmf(*next, candidates_[choices[d]],
                                profile_.p_a(d), profile_.p_b(d),
                                pmf_options_);
    ++pmf_stats_.stages_computed;
    state = std::move(next);
    if (pmf_capacity_ > 0) {
      pmf_insert(std::string_view(key.data(), d + 1), state);
    }
  }
  return state;
}

analysis::ErrorPmf ChainEvaluator::error_pmf(
    std::span<const std::size_t> choices) {
  if (choices.size() == width()) ++pmf_stats_.chains_evaluated;
  return analysis::finalize_error_pmf(*pmf_state_after(choices),
                                      pmf_options_);
}

void ChainEvaluator::clear() {
  slots_.clear();
  key_pool_.clear();
  table_.clear();
  live_slots_ = 0;
  lru_head_ = kNil;
  lru_tail_ = kNil;
  pmf_index_.clear();
  pmf_lru_.clear();
}

}  // namespace sealpaa::engine

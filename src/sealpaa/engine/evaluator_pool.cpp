#include "sealpaa/engine/evaluator_pool.hpp"

#include <cstring>
#include <stdexcept>

namespace sealpaa::engine {

namespace {

void fold(CacheStats& into, const CacheStats& stats) {
  into.hits += stats.hits;
  into.misses += stats.misses;
  into.insertions += stats.insertions;
  into.evictions += stats.evictions;
  into.stages_computed += stats.stages_computed;
  into.chains_evaluated += stats.chains_evaluated;
}

}  // namespace

EvaluatorPool::EvaluatorPool(std::vector<adders::AdderCell> palette,
                             EvaluatorPoolOptions options)
    : palette_(std::move(palette)), options_(options) {
  if (palette_.empty()) {
    throw std::invalid_argument("EvaluatorPool: palette must not be empty");
  }
  if (options_.max_evaluators == 0) {
    throw std::invalid_argument("EvaluatorPool: max_evaluators must be >= 1");
  }
}

std::string EvaluatorPool::key_of(const multibit::InputProfile& profile) {
  // The exact bit patterns of every probability, so two profiles share an
  // evaluator only when their analyses are bit-identical.
  const auto append_double = [](std::string& key, double value) {
    char bytes[sizeof(double)];
    std::memcpy(bytes, &value, sizeof(double));
    key.append(bytes, sizeof(double));
  };
  std::string key;
  key.reserve((profile.width() * 2 + 1) * sizeof(double));
  for (std::size_t i = 0; i < profile.width(); ++i) {
    append_double(key, profile.p_a(i));
  }
  for (std::size_t i = 0; i < profile.width(); ++i) {
    append_double(key, profile.p_b(i));
  }
  append_double(key, profile.p_cin());
  return key;
}

std::shared_ptr<ChainEvaluator> EvaluatorPool::acquire(
    const multibit::InputProfile& profile) {
  std::string key = key_of(profile);
  if (const auto found = index_.find(key); found != index_.end()) {
    entries_.splice(entries_.begin(), entries_, found->second);
    pool_hits_ += 1;
    return entries_.front().evaluator;
  }
  auto evaluator = std::make_shared<ChainEvaluator>(profile, palette_,
                                                    options_.evaluator);
  created_ += 1;
  entries_.push_front(Entry{key, evaluator});
  index_.emplace(std::move(key), entries_.begin());
  while (entries_.size() > options_.max_evaluators) {
    const Entry& oldest = entries_.back();
    retire(oldest);
    index_.erase(oldest.key);
    entries_.pop_back();
    evicted_ += 1;
  }
  return evaluator;
}

std::optional<std::size_t> EvaluatorPool::candidate_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < palette_.size(); ++i) {
    if (palette_[i].name() == name) return i;
  }
  return std::nullopt;
}

CacheStats EvaluatorPool::aggregate_stats() const {
  CacheStats total = retired_;
  for (const Entry& entry : entries_) {
    fold(total, entry.evaluator->stats());
  }
  return total;
}

CacheStats EvaluatorPool::aggregate_pmf_stats() const {
  CacheStats total = retired_pmf_;
  for (const Entry& entry : entries_) {
    fold(total, entry.evaluator->pmf_stats());
  }
  return total;
}

BatchStats EvaluatorPool::aggregate_batch_stats() const {
  BatchStats total = retired_batch_;
  for (const Entry& entry : entries_) {
    total.merge(entry.evaluator->batch_stats());
  }
  return total;
}

void EvaluatorPool::clear() {
  for (const Entry& entry : entries_) retire(entry);
  entries_.clear();
  index_.clear();
}

void EvaluatorPool::retire(const Entry& entry) {
  fold(retired_, entry.evaluator->stats());
  fold(retired_pmf_, entry.evaluator->pmf_stats());
  retired_batch_.merge(entry.evaluator->batch_stats());
}

}  // namespace sealpaa::engine

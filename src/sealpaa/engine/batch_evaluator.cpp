#include "sealpaa/engine/batch_evaluator.hpp"

#include <stdexcept>
#include <string>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::engine {

ChainBatchEvaluator::ChainBatchEvaluator(
    multibit::InputProfile profile, std::vector<adders::AdderCell> candidates)
    : profile_(std::move(profile)),
      base_{1.0 - profile_.p_cin(), profile_.p_cin()} {
  if (candidates.empty()) {
    throw std::invalid_argument("ChainBatchEvaluator: no candidate cells");
  }
  if (candidates.size() > 255) {
    throw std::invalid_argument(
        "ChainBatchEvaluator: at most 255 candidate cells (lane choices "
        "are bytes)");
  }
  mkls_.reserve(candidates.size());
  for (const adders::AdderCell& cell : candidates) {
    mkls_.push_back(analysis::MklMatrices::from_cell(cell));
  }

  // The whole point of the SoA layout: with profile and palette fixed,
  // every (stage, candidate) pair reduces to six constants computed once
  // here and reused by every batch for the evaluator's lifetime.  The
  // sums run left-to-right over the four operand products so the table
  // is deterministic; the reassociation relative to the scalar 8-term
  // dot products is what separates kFast from kStrict.
  const std::size_t n = profile_.width();
  const std::size_t palette = mkls_.size();
  coeff_.resize(n * palette * 6);
  for (std::size_t i = 0; i < n; ++i) {
    const double p_a = profile_.p_a(i);
    const double p_b = profile_.p_b(i);
    const double na = 1.0 - p_a;
    const double nb = 1.0 - p_b;
    const double ab[4] = {na * nb, na * p_b, p_a * nb, p_a * p_b};
    for (std::size_t c = 0; c < palette; ++c) {
      const analysis::MklMatrices& mkl = mkls_[c];
      double* t = coeff_.data() + (i * palette + c) * 6;
      t[0] = t[1] = t[2] = t[3] = t[4] = t[5] = 0.0;
      for (std::size_t j = 0; j < 4; ++j) {
        t[0] += ab[j] * mkl.k[2 * j];      // t00: c0 -> c0'
        t[1] += ab[j] * mkl.k[2 * j + 1];  // t01: c1 -> c0'
        t[2] += ab[j] * mkl.m[2 * j];      // t10: c0 -> c1'
        t[3] += ab[j] * mkl.m[2 * j + 1];  // t11: c1 -> c1'
        t[4] += ab[j] * mkl.l[2 * j];      // u0: Equation 12
        t[5] += ab[j] * mkl.l[2 * j + 1];  // u1
      }
    }
  }
}

void ChainBatchEvaluator::check_stage(std::size_t stage) const {
  if (stage >= width()) {
    throw std::out_of_range("ChainBatchEvaluator: stage " +
                            std::to_string(stage) + " out of range (width " +
                            std::to_string(width()) + ")");
  }
}

void ChainBatchEvaluator::check_choices(
    std::span<const std::uint8_t> choices) const {
  for (const std::uint8_t c : choices) {
    if (c >= mkls_.size()) {
      throw std::out_of_range("ChainBatchEvaluator: choice index " +
                              std::to_string(c) + " out of range (" +
                              std::to_string(mkls_.size()) + " candidates)");
    }
  }
}

void ChainBatchEvaluator::init_lanes(Lanes& lanes, std::size_t count) const {
  lanes.c0.assign(count, base_.c0);
  lanes.c1.assign(count, base_.c1);
}

void ChainBatchEvaluator::advance_in_place(
    std::size_t stage, std::span<const std::uint8_t> choices, Lanes& lanes,
    BatchMode mode) {
  const std::size_t n = choices.size();
  if (mode == BatchMode::kFast) {
    detail::advance_lanes_fast(coeff(stage), choices.data(), n,
                               lanes.c0.data(), lanes.c1.data());
    stats_.fast_lane_stages += n;
  } else {
    const double p_a = profile_.p_a(stage);
    const double p_b = profile_.p_b(stage);
    for (std::size_t l = 0; l < n; ++l) {
      const analysis::CarryState next = analysis::advance_stage(
          mkls_[choices[l]], p_a, p_b, {lanes.c0[l], lanes.c1[l]});
      lanes.c0[l] = next.c0;
      lanes.c1[l] = next.c1;
    }
  }
  stats_.lane_stages += n;
}

void ChainBatchEvaluator::advance(std::size_t stage,
                                  std::span<const std::uint8_t> choices,
                                  Lanes& lanes, BatchMode mode) {
  check_stage(stage);
  if (choices.size() != lanes.size()) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::advance: " + std::to_string(choices.size()) +
        " choices for " + std::to_string(lanes.size()) + " lanes");
  }
  check_choices(choices);
  advance_in_place(stage, choices, lanes, mode);
}

void ChainBatchEvaluator::advance_from(std::size_t stage, const Lanes& in,
                                       std::span<const std::uint32_t> parents,
                                       std::span<const std::uint8_t> choices,
                                       Lanes& out, BatchMode mode) {
  check_stage(stage);
  if (parents.size() != choices.size()) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::advance_from: " +
        std::to_string(parents.size()) + " parents for " +
        std::to_string(choices.size()) + " choices");
  }
  check_choices(choices);
  const std::size_t n = choices.size();
  out.c0.resize(n);
  out.c1.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    const std::size_t p = parents[l];
    if (p >= in.size()) {
      throw std::out_of_range("ChainBatchEvaluator::advance_from: parent " +
                              std::to_string(p) + " out of range (" +
                              std::to_string(in.size()) + " input lanes)");
    }
    out.c0[l] = in.c0[p];
    out.c1[l] = in.c1[p];
  }
  advance_in_place(stage, choices, out, mode);
}

void ChainBatchEvaluator::final_success(const Lanes& lanes,
                                        std::span<const std::uint8_t> choices,
                                        std::span<double> out,
                                        BatchMode mode) {
  if (width() == 0) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::final_success: zero-width profile");
  }
  if (choices.size() != lanes.size() || out.size() != lanes.size()) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::final_success: choices/out size does not "
        "match " + std::to_string(lanes.size()) + " lanes");
  }
  check_choices(choices);
  const std::size_t last = width() - 1;
  const std::size_t n = choices.size();
  if (mode == BatchMode::kFast) {
    detail::final_lanes_fast(coeff(last), choices.data(), n, lanes.c0.data(),
                             lanes.c1.data(), out.data());
  } else {
    const double p_a = profile_.p_a(last);
    const double p_b = profile_.p_b(last);
    for (std::size_t l = 0; l < n; ++l) {
      out[l] = analysis::final_success(mkls_[choices[l]], p_a, p_b,
                                       {lanes.c0[l], lanes.c1[l]});
    }
  }
}

void ChainBatchEvaluator::final_success_from(
    const Lanes& in, std::span<const std::uint32_t> parents,
    std::span<const std::uint8_t> choices, std::span<double> out,
    BatchMode mode) {
  if (parents.size() != choices.size()) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::final_success_from: " +
        std::to_string(parents.size()) + " parents for " +
        std::to_string(choices.size()) + " choices");
  }
  Lanes gathered;
  const std::size_t n = parents.size();
  gathered.c0.resize(n);
  gathered.c1.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    const std::size_t p = parents[l];
    if (p >= in.size()) {
      throw std::out_of_range(
          "ChainBatchEvaluator::final_success_from: parent " +
          std::to_string(p) + " out of range (" + std::to_string(in.size()) +
          " input lanes)");
    }
    gathered.c0[l] = in.c0[p];
    gathered.c1[l] = in.c1[p];
  }
  final_success(gathered, choices, out, mode);
}

std::vector<analysis::AnalysisResult> ChainBatchEvaluator::evaluate(
    std::span<const std::span<const std::size_t>> chains, BatchMode mode) {
  const std::size_t n = width();
  const std::size_t count = chains.size();
  std::vector<analysis::AnalysisResult> results(count);
  if (count == 0) return results;
  if (n == 0) {
    throw std::invalid_argument(
        "ChainBatchEvaluator::evaluate: zero-width profile");
  }
  // Validate before any size_t -> byte narrowing.
  for (const std::span<const std::size_t> chain : chains) {
    if (chain.size() != n) {
      throw std::invalid_argument(
          "ChainBatchEvaluator::evaluate: chain of " +
          std::to_string(chain.size()) + " stages does not match width " +
          std::to_string(n));
    }
    for (const std::size_t c : chain) {
      if (c >= mkls_.size()) {
        throw std::out_of_range(
            "ChainBatchEvaluator::evaluate: choice index " +
            std::to_string(c) + " out of range (" +
            std::to_string(mkls_.size()) + " candidates)");
      }
    }
  }
  note_batch(count);

  Lanes lanes;
  init_lanes(lanes, count);
  std::vector<std::uint8_t> stage_choices(count);
  std::vector<double> p_raw(count);

  // Stage-major: one pass per stage across all lanes.  Per lane this is
  // the exact operation sequence of RecursiveAnalyzer::analyze — stages
  // 0..n-2 advance, then Equation 12, then the last carry advance — so
  // kStrict results are bit-identical to the scalar recursion.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t l = 0; l < count; ++l) {
      stage_choices[l] = static_cast<std::uint8_t>(chains[l][i]);
    }
    advance_in_place(i, stage_choices, lanes, mode);
  }
  for (std::size_t l = 0; l < count; ++l) {
    stage_choices[l] = static_cast<std::uint8_t>(chains[l][n - 1]);
  }
  final_success(lanes, stage_choices, p_raw, mode);
  advance_in_place(n - 1, stage_choices, lanes, mode);

  for (std::size_t l = 0; l < count; ++l) {
    results[l].p_success = prob::require_probability(
        p_raw[l], "ChainBatchEvaluator P(Succ)");
    results[l].p_error = 1.0 - results[l].p_success;
    results[l].final_carry = {lanes.c0[l], lanes.c1[l]};
  }
  return results;
}

void ChainBatchEvaluator::note_batch(std::size_t lanes) noexcept {
  stats_.batches += 1;
  stats_.lanes += lanes;
  if (lanes > stats_.max_lanes) {
    stats_.max_lanes = static_cast<std::uint64_t>(lanes);
  }
}

}  // namespace sealpaa::engine

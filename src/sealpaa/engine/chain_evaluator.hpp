// Prefix-cached chain scoring for design-space exploration.
//
// DSE algorithms (exhaustive, beam, greedy) score thousands of candidate
// chains drawn from a small cell palette, and consecutive candidates
// share long prefixes.  `ChainEvaluator` memoizes the success-filtered
// carry state of every prefix it computes in an LRU cache keyed by the
// choice-index string, so extending a partial design by one stage costs
// one cache probe plus one `advance_stage` — O(1) per candidate stage —
// instead of re-running the recursion from bit 0.
//
// Scoring arithmetic is the exact call sequence of
// `RecursiveAnalyzer::analyze`, so `evaluate()` is bit-identical to the
// batch analyzer (enforced by tests/test_engine.cpp), and the cache can
// never change a result — only how often stages are recomputed.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/engine/batch_evaluator.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::engine {

struct ChainEvaluatorOptions {
  /// Maximum number of prefix carry states kept (LRU eviction beyond
  /// it).  0 disables caching entirely: every query recomputes from bit
  /// 0 and the hit/miss/insertion/eviction counters stay 0.
  std::size_t cache_capacity = std::size_t{1} << 16;
  /// Maximum number of prefix error-PMF states kept by the PMF prefix
  /// cache (pmf_state_after / error_pmf).  PMF states are far heavier
  /// than carry states — four sparse distributions each — so the default
  /// is correspondingly smaller.  0 disables PMF caching.
  std::size_t pmf_cache_capacity = std::size_t{1} << 12;
  /// Representation/switchover knobs for the PMF propagation.
  analysis::PmfOptions pmf;
};

/// Exact accounting of the prefix cache's work, reported through
/// sealpaa::obs into the run-report JSON.
struct CacheStats {
  std::uint64_t hits = 0;        // probes answered from the cache
  std::uint64_t misses = 0;      // probes (one per depth tried) that missed
  std::uint64_t insertions = 0;  // prefix states stored
  std::uint64_t evictions = 0;   // LRU entries dropped at capacity
  /// advance_stage calls actually performed — the number the cache
  /// exists to minimise.
  std::uint64_t stages_computed = 0;
  std::uint64_t chains_evaluated = 0;  // full evaluate() calls

  /// hits / (hits + misses); 0 when no probe has happened yet.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t probes = hits + misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(probes);
  }
};

/// Scores chains assembled from a fixed candidate palette under a fixed
/// input profile.  A chain is a vector of candidate indices, least
/// significant stage first.  Not thread-safe; use one per thread.
class ChainEvaluator {
 public:
  /// Throws std::invalid_argument when `candidates` is empty or holds
  /// more than 255 cells (prefix keys pack choice indices into bytes).
  ChainEvaluator(multibit::InputProfile profile,
                 std::vector<adders::AdderCell> candidates,
                 ChainEvaluatorOptions options = {});

  [[nodiscard]] std::size_t width() const noexcept {
    return profile_.width();
  }
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return candidates_.size();
  }
  [[nodiscard]] const multibit::InputProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const adders::AdderCell& candidate(std::size_t c) const {
    return candidates_.at(c);
  }
  [[nodiscard]] const analysis::MklMatrices& mkl(std::size_t c) const {
    return mkls_.at(c);
  }

  /// Success-filtered carry state after the stages of `choices`
  /// (size() may be 0..width()).  Served from the longest cached prefix;
  /// any newly computed prefix states are cached on the way forward.
  [[nodiscard]] analysis::CarryState carry_after(
      std::span<const std::size_t> choices);

  /// P(Success) of the full chain `prefix + [last_choice]` (Equation
  /// 12).  Requires prefix.size() == width() - 1.  Raw dot product, no
  /// clamping — the quantity DSE comparisons rank by.
  [[nodiscard]] double final_success(std::span<const std::size_t> prefix,
                                     std::size_t last_choice);

  /// Full analysis of a complete chain (choices.size() == width()).
  /// Bit-identical to `RecursiveAnalyzer::analyze` on the same cells.
  [[nodiscard]] analysis::AnalysisResult evaluate(
      std::span<const std::size_t> choices);

  /// Many full chains in one strict SoA pass: per stage, every lane
  /// first probes the prefix cache at its next depth (so one lane's
  /// freshly cached prefix serves every other lane, within the batch as
  /// well as across calls), lanes sharing a not-yet-cached prefix are
  /// deduplicated so each distinct prefix advances exactly once, and the
  /// remaining lanes advance together through the ChainBatchEvaluator.
  /// Element i is bit-identical to evaluate(chains[i]) — cache adoption
  /// only changes how often stages are recomputed, never a value.
  /// Accounted in stats() (probes/advances) and batch_stats() (lanes).
  [[nodiscard]] std::vector<analysis::AnalysisResult> evaluate_batch(
      std::span<const std::span<const std::size_t>> chains);

  /// One frontier expansion of a beam/greedy DSE round: every extension
  /// (parents[e.parent] + [e.choice]) scored in a single strict SoA
  /// batch.  All parents must share one depth d; when d + 1 == width()
  /// the scores are Equation-12 final success values (nothing cached,
  /// like final_success), otherwise the advanced carry's success mass,
  /// with each advanced state inserted into the prefix cache exactly as
  /// the per-extension carry_after path would.  Scores are bit-identical
  /// to the per-extension calls (same per-lane call sequence).
  struct Extension {
    std::uint32_t parent = 0;  // index into `parents`
    std::uint8_t choice = 0;   // candidate index for the new stage
  };
  [[nodiscard]] std::vector<double> score_extensions(
      std::span<const std::vector<std::size_t>> parents,
      std::span<const Extension> extensions);

  /// Joint-carry error-PMF state after the stages of `choices`, served
  /// from the longest cached PMF prefix (its own LRU cache, accounted in
  /// pmf_stats()).  The returned state is shared with the cache — treat
  /// it as immutable; copy before calling advance_error_pmf on it.
  [[nodiscard]] std::shared_ptr<const analysis::ErrorPmfState>
  pmf_state_after(std::span<const std::size_t> choices);

  /// Finalized error PMF of `choices` (any size up to width(); the
  /// carry-out difference is folded at the prefix depth, so a partial
  /// chain yields its partial-adder error distribution).  For a
  /// full-width chain this is identical to propagate_error_pmf on the
  /// assembled chain; prefix reuse only changes how often stages are
  /// recomputed, never the result (mixture accumulation order is a
  /// function of the choice sequence alone).
  [[nodiscard]] analysis::ErrorPmf error_pmf(
      std::span<const std::size_t> choices);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  /// SoA batch accounting (evaluate_batch / score_extensions lanes).
  [[nodiscard]] const BatchStats& batch_stats() const noexcept {
    return batch_.stats();
  }
  /// PMF prefix-cache accounting (stages_computed counts
  /// advance_error_pmf calls, chains_evaluated counts error_pmf calls).
  [[nodiscard]] const CacheStats& pmf_stats() const noexcept {
    return pmf_stats_;
  }
  void reset_stats() noexcept {
    stats_ = CacheStats{};
    pmf_stats_ = CacheStats{};
    batch_.reset_stats();
  }

  /// Cached prefix states currently held.
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return live_slots_;
  }
  /// Cached PMF prefix states currently held.
  [[nodiscard]] std::size_t pmf_cache_size() const noexcept {
    return pmf_index_.size();
  }
  /// Drops every cached prefix, carry and PMF (stats are kept).
  void clear();

 private:
  // The cache is a hand-rolled flat structure because it sits on the DSE
  // hot path: a beam search does one probe-miss, one probe-hit and one
  // insertion per candidate stage, and a node-based unordered_map pays
  // an allocation per insertion plus pointer-chasing per probe.  Here a
  // slot array holds the carry states (key bytes in a parallel pool at
  // slot * stride), an open-addressing index table maps key -> slot, and
  // the LRU list is threaded through the slots as indices — zero
  // allocations at steady state.  Slots are recycled in place on
  // eviction; the index table uses linear probing with backward-shift
  // deletion, so no tombstones accumulate.
  static constexpr std::uint32_t kNil = 0xFFFF'FFFFu;

  struct Slot {
    analysis::CarryState carry;
    std::uint64_t hash = 0;    // of the key bytes; avoids rehash on grow
    std::uint32_t prev = kNil;  // LRU links (head = most recent)
    std::uint32_t next = kNil;
    std::uint32_t len = 0;  // key length in bytes (one per choice index)
  };

  // The PMF cache is deliberately *not* the flat slot structure above:
  // PMF states are heavyweight (four sparse vectors) and the PMF
  // propagation itself dwarfs a map probe, so a node-based LRU
  // (unordered_map over a std::list) is simple and fast enough.
  struct PmfNode {
    std::string key;  // choice-index bytes, as in the carry cache
    std::shared_ptr<const analysis::ErrorPmfState> state;
  };
  using PmfLru = std::list<PmfNode>;

  void pmf_insert(std::string_view key,
                  std::shared_ptr<const analysis::ErrorPmfState> state);

  void check_choice(std::size_t choice) const;
  [[nodiscard]] std::string_view key_of(std::uint32_t slot) const noexcept;
  [[nodiscard]] std::uint32_t find_slot(std::string_view key,
                                        std::uint64_t hash) const noexcept;
  void insert_prefix(std::string_view key, std::uint64_t hash,
                     const analysis::CarryState& carry);
  void touch(std::uint32_t slot) noexcept;  // mark most recently used
  void unlink(std::uint32_t slot) noexcept;
  void link_front(std::uint32_t slot) noexcept;
  void table_erase(std::uint32_t slot) noexcept;
  void grow_table();

  multibit::InputProfile profile_;
  std::vector<adders::AdderCell> candidates_;
  std::vector<analysis::MklMatrices> mkls_;
  analysis::CarryState base_;  // Equation 5 initial state
  /// The SoA core behind evaluate_batch/score_extensions.  Strict mode
  /// only from here — cached states must stay bit-identical to the
  /// scalar recursion no matter which path computed them.
  ChainBatchEvaluator batch_;
  ChainBatchEvaluator::Lanes batch_scratch_;
  std::size_t capacity_;
  std::size_t key_stride_;  // bytes reserved per slot in key_pool_
  std::vector<char> key_scratch_;
  std::vector<std::uint64_t> hash_scratch_;  // probe hashes, reused on insert

  std::vector<Slot> slots_;           // grows lazily up to capacity_
  std::vector<char> key_pool_;        // slot i's key at i * key_stride_
  std::vector<std::uint32_t> table_;  // open addressing; kNil = empty
  std::size_t live_slots_ = 0;
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;
  CacheStats stats_;

  std::size_t pmf_capacity_;
  analysis::PmfOptions pmf_options_;
  PmfLru pmf_lru_;  // front = most recently used
  std::unordered_map<std::string_view, PmfLru::iterator> pmf_index_;
  CacheStats pmf_stats_;
};

}  // namespace sealpaa::engine

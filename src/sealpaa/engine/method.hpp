// Uniform entry point over every error-analysis method in the library.
//
// The paper compares its O(N) recursion against the traditional
// inclusion-exclusion analysis and three simulation oracles.  Those five
// engines live in three modules with five different signatures; the
// method registry gives the CLI, the benches and the differential test
// suite one `evaluate(chain, profile, method, options)` call that
// dispatches to any of them and returns one comparable result shape.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/stats.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/util/op_counter.hpp"

namespace sealpaa::engine {

/// Every way the library can turn (chain, profile) into P(Error).
enum class Method {
  kRecursive,           // the paper's O(N) recursion (§4)
  kInclusionExclusion,  // traditional 2^k-subset analysis (§3)
  kExhaustiveSim,       // all 2^(2N+1) cases; uniform-0.5 inputs only
  kWeightedExhaustive,  // all cases weighted by the profile (exact oracle)
  kMonteCarlo,          // sampled oracle with confidence intervals
  kAnalyticPmf,         // exact error-PMF propagation (zero samples)
  kBlockAnalytic,       // exact block-adder statistics (BlockChainSpec)
};

/// Registry row: stable CLI name plus a one-line description.
struct MethodInfo {
  Method method = Method::kRecursive;
  std::string_view name;     // e.g. "inclusion-exclusion" (--method= value)
  std::string_view summary;  // one line for --help / error messages
  bool exact = false;        // true when the result has no sampling noise
};

/// All registered methods, in declaration order.
[[nodiscard]] std::span<const MethodInfo> all_methods();

/// Registry row for `method`.
[[nodiscard]] const MethodInfo& method_info(Method method);

/// Stable name of `method` (the inverse of parse_method).
[[nodiscard]] std::string_view method_name(Method method);

/// Parses a CLI method name; throws std::invalid_argument listing the
/// valid names when `name` is not registered.
[[nodiscard]] Method parse_method(std::string_view name);

/// Per-call knobs; every field has a sensible default so
/// `evaluate(chain, profile, method)` just works.
struct EvaluateOptions {
  /// Monte Carlo sample count.
  std::uint64_t samples = 1'000'000;
  /// Monte Carlo RNG seed.
  std::uint64_t seed = 0x5ea1'c0de'2017'dacULL;
  /// Worker threads for the parallel engines (0 → the shared pool).
  unsigned threads = 0;
  /// Width guard for the exponential engines; 0 keeps each engine's own
  /// default (inclusion-exclusion 20, weighted-exhaustive 14,
  /// exhaustive simulation 13).
  std::size_t max_width = 0;
  /// Record the per-stage trace (recursive method only).
  bool record_trace = false;
  /// Evaluation backend for the simulation engines (exhaustive,
  /// weighted-exhaustive, monte-carlo).  Both kernels produce identical
  /// metrics; bit-sliced evaluates 64 input vectors per pass.
  sim::Kernel kernel = sim::Kernel::kBitSliced;
  /// Arithmetic accounting sink (recursive and inclusion-exclusion).
  util::OpCounter* op_counter = nullptr;
  /// Representation/switchover knobs for the analytic-PMF method.
  analysis::PmfOptions pmf;
  /// Mass points kept in Evaluation::pmf's top-k projection.
  std::size_t pmf_top_k = 8;
  /// Block-adder topology for the block-analytic method (required there,
  /// ignored everywhere else).  Its width must equal the profile width;
  /// the cell chain's content is not consulted — block sub-adders are
  /// exact by construction.
  std::optional<multibit::BlockChainSpec> blocks;
};

/// Distribution-level quality metrics (sim::ErrorMetrics shape): filled
/// by every method that sees the full error distribution — analytic-pmf
/// (exactly), the exhaustive engines (exactly) and Monte Carlo
/// (sampled).  The analytical methods that only track the stage-success
/// event (recursive, inclusion-exclusion) leave it empty.
struct DistributionStats {
  /// P(approx value != exact value) — value-level, so at most the
  /// stage-level p_error (carry errors can be numerically masked).
  double error_rate = 0.0;
  double mean_error = 0.0;           // E[err]
  double mean_error_distance = 0.0;  // E[|err|] (MED)
  double mean_squared_error = 0.0;   // E[err^2] (MSE)
  std::int64_t worst_case_error = 0;
  /// 10*log10(peak^2 / MSE) with peak = 2^width - 1; +inf when MSE = 0.
  double psnr_db = std::numeric_limits<double>::infinity();
};

/// Run-report projection of the full error PMF (analytic-pmf only).
struct PmfSummary {
  std::uint64_t support = 0;  // distinct error values with mass
  double total_mass = 0.0;    // must be 1 within float error
  double entropy_bits = 0.0;
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
  /// Highest-probability mass points, descending.
  std::vector<analysis::ErrorPmf::Entry> top;
};

/// Common result shape across all methods.
struct Evaluation {
  Method method = Method::kRecursive;
  double p_error = 0.0;
  double p_success = 1.0;
  /// Method-specific work measure: stages advanced (recursive,
  /// analytic-pmf), subset terms (inclusion-exclusion), input cases
  /// (exhaustive engines) or samples drawn (Monte Carlo).
  std::uint64_t work_items = 0;
  /// Wilson 95% interval for P(Error); empty unless Monte Carlo.
  prob::Interval stage_failure_ci = prob::Interval::empty_interval();
  /// Per-stage trace; only filled by the recursive and analytic-pmf
  /// methods when EvaluateOptions::record_trace is set.
  std::vector<analysis::StageTrace> trace;
  /// Distribution metrics; see DistributionStats for which methods fill
  /// it.
  std::optional<DistributionStats> distribution;
  /// PMF projection; analytic-pmf only.
  std::optional<PmfSummary> pmf;
};

/// Evaluates `chain` under `profile` with `method`.  Throws
/// std::invalid_argument when the widths mismatch, when the width
/// exceeds the method's guard, or when the method cannot represent the
/// profile (exhaustive simulation requires uniform-0.5 inputs).
[[nodiscard]] Evaluation evaluate(const multibit::AdderChain& chain,
                                  const multibit::InputProfile& profile,
                                  Method method,
                                  const EvaluateOptions& options = {});

/// Homogeneous-chain convenience overload.
[[nodiscard]] Evaluation evaluate(const adders::AdderCell& cell,
                                  const multibit::InputProfile& profile,
                                  Method method,
                                  const EvaluateOptions& options = {});

/// Many chains against one profile.  Element i equals
/// evaluate(chains[i], profile, method, options) bit-for-bit; the batch
/// form only changes how the work is scheduled.  For kRecursive the
/// chains' distinct cells are deduplicated into a palette and all lanes
/// advance together through one strict-mode ChainBatchEvaluator pass —
/// O(1) dispatch overhead per chain instead of per stage.  Other
/// methods, traced runs (record_trace / op_counter) and palettes beyond
/// 255 distinct cells fall back to the per-chain loop.
[[nodiscard]] std::vector<Evaluation> evaluate_batch(
    std::span<const multibit::AdderChain> chains,
    const multibit::InputProfile& profile, Method method,
    const EvaluateOptions& options = {});

}  // namespace sealpaa::engine

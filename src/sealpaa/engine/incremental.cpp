#include "sealpaa/engine/incremental.hpp"

#include <stdexcept>
#include <string>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::engine {

std::uint16_t MklCache::key_of(const adders::AdderCell& cell) noexcept {
  std::uint16_t key = 0;
  const adders::AdderCell::Rows& rows = cell.rows();
  for (std::size_t r = 0; r < adders::AdderCell::kRows; ++r) {
    if (rows[r].sum) key |= static_cast<std::uint16_t>(1u << r);
    if (rows[r].carry) key |= static_cast<std::uint16_t>(1u << (8 + r));
  }
  return key;
}

const analysis::MklMatrices& MklCache::of(const adders::AdderCell& cell) {
  const std::uint16_t key = key_of(cell);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  ++derivations_;
  return table_.emplace(key, analysis::MklMatrices::from_cell(cell))
      .first->second;
}

IncrementalAnalyzer::IncrementalAnalyzer(multibit::InputProfile profile,
                                         MklCache* mkl_cache)
    : profile_(std::move(profile)),
      base_{1.0 - profile_.p_cin(), profile_.p_cin()},
      cache_(mkl_cache != nullptr ? mkl_cache : &owned_cache_) {
  stack_.reserve(profile_.width());
}

const analysis::CarryState& IncrementalAnalyzer::push_stage(
    const adders::AdderCell& cell) {
  return push_stage(cache_->of(cell));
}

const analysis::CarryState& IncrementalAnalyzer::push_stage(
    const analysis::MklMatrices& mkl) {
  const std::size_t i = depth();
  if (i >= width()) {
    throw std::logic_error(
        "IncrementalAnalyzer::push_stage: chain already holds all " +
        std::to_string(width()) + " stages");
  }
  const analysis::CarryState next = analysis::advance_stage(
      mkl, profile_.p_a(i), profile_.p_b(i), carry_at(i));
  stack_.push_back(Frame{mkl, next});
  return stack_.back().carry;
}

void IncrementalAnalyzer::pop() {
  if (stack_.empty()) {
    throw std::logic_error("IncrementalAnalyzer::pop: no stages pushed");
  }
  stack_.pop_back();
}

void IncrementalAnalyzer::rewind(std::size_t depth) {
  if (depth > stack_.size()) {
    throw std::invalid_argument(
        "IncrementalAnalyzer::rewind: target depth " + std::to_string(depth) +
        " exceeds current depth " + std::to_string(stack_.size()));
  }
  stack_.resize(depth);
}

const analysis::CarryState& IncrementalAnalyzer::carry_at(
    std::size_t depth) const {
  if (depth > stack_.size()) {
    throw std::invalid_argument(
        "IncrementalAnalyzer::carry_at: depth " + std::to_string(depth) +
        " exceeds current depth " + std::to_string(stack_.size()));
  }
  return depth == 0 ? base_ : stack_[depth - 1].carry;
}

double IncrementalAnalyzer::final_success_with(
    const analysis::MklMatrices& mkl) const {
  const std::size_t n = width();
  if (depth() + 1 != n) {
    throw std::logic_error(
        "IncrementalAnalyzer::final_success_with: requires depth " +
        std::to_string(n - 1) + ", have " + std::to_string(depth()));
  }
  return analysis::final_success(mkl, profile_.p_a(n - 1), profile_.p_b(n - 1),
                                 carry_at(n - 1));
}

analysis::AnalysisResult IncrementalAnalyzer::finish(bool record_trace) const {
  const std::size_t n = width();
  if (depth() != n) {
    throw std::logic_error("IncrementalAnalyzer::finish: chain holds " +
                           std::to_string(depth()) + " of " +
                           std::to_string(n) + " stages");
  }
  analysis::AnalysisResult result;
  // P(Succ) closes over the carry state *before* the last stage, exactly
  // as the batch analyzer scores it (Equation 12).
  result.p_success = prob::require_probability(
      analysis::final_success(stack_[n - 1].mkl, profile_.p_a(n - 1),
                              profile_.p_b(n - 1), carry_at(n - 1)),
      "IncrementalAnalyzer P(Succ)");
  result.p_error = 1.0 - result.p_success;
  result.final_carry = carry_at(n);
  if (record_trace) {
    result.trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.trace.push_back(analysis::StageTrace{
          profile_.p_a(i), profile_.p_b(i), carry_at(i), carry_at(i + 1)});
    }
  }
  return result;
}

}  // namespace sealpaa::engine

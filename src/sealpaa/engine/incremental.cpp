#include "sealpaa/engine/incremental.hpp"

#include <stdexcept>
#include <string>

#include "sealpaa/prob/probability.hpp"

namespace sealpaa::engine {

std::uint16_t MklCache::key_of(const adders::AdderCell& cell) noexcept {
  std::uint16_t key = 0;
  const adders::AdderCell::Rows& rows = cell.rows();
  for (std::size_t r = 0; r < adders::AdderCell::kRows; ++r) {
    if (rows[r].sum) key |= static_cast<std::uint16_t>(1u << r);
    if (rows[r].carry) key |= static_cast<std::uint16_t>(1u << (8 + r));
  }
  return key;
}

const analysis::MklMatrices& MklCache::of(const adders::AdderCell& cell) {
  const std::uint16_t key = key_of(cell);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  ++derivations_;
  return table_.emplace(key, analysis::MklMatrices::from_cell(cell))
      .first->second;
}

IncrementalAnalyzer::IncrementalAnalyzer(multibit::InputProfile profile,
                                         MklCache* mkl_cache)
    : profile_(std::move(profile)),
      base_{1.0 - profile_.p_cin(), profile_.p_cin()},
      cache_(mkl_cache != nullptr ? mkl_cache : &owned_cache_) {
  stack_.reserve(profile_.width());
}

const analysis::CarryState& IncrementalAnalyzer::push_stage(
    const adders::AdderCell& cell) {
  const std::size_t i = depth();
  if (i >= width()) {
    throw std::logic_error(
        "IncrementalAnalyzer::push_stage: chain already holds all " +
        std::to_string(width()) + " stages");
  }
  const analysis::MklMatrices& mkl = cache_->of(cell);
  const analysis::CarryState next = analysis::advance_stage(
      mkl, profile_.p_a(i), profile_.p_b(i), carry_at(i));
  Frame frame{mkl, next, {}};
  if (track_pmf_) {
    frame.pmf = pmf_state_at(i);
    analysis::advance_error_pmf(frame.pmf, cell, profile_.p_a(i),
                                profile_.p_b(i), pmf_options_);
  }
  stack_.push_back(std::move(frame));
  return stack_.back().carry;
}

const analysis::CarryState& IncrementalAnalyzer::push_stage(
    const analysis::MklMatrices& mkl) {
  const std::size_t i = depth();
  if (i >= width()) {
    throw std::logic_error(
        "IncrementalAnalyzer::push_stage: chain already holds all " +
        std::to_string(width()) + " stages");
  }
  if (track_pmf_) {
    // The M/K/L matrices only encode carry and success behaviour; the
    // PMF deltas additionally need the cell's sum column.
    throw std::logic_error(
        "IncrementalAnalyzer::push_stage: the matrices-only fast path "
        "cannot advance the error PMF; push the AdderCell while PMF "
        "tracking is enabled");
  }
  const analysis::CarryState next = analysis::advance_stage(
      mkl, profile_.p_a(i), profile_.p_b(i), carry_at(i));
  stack_.push_back(Frame{mkl, next, {}});
  return stack_.back().carry;
}

void IncrementalAnalyzer::pop() {
  if (stack_.empty()) {
    throw std::logic_error("IncrementalAnalyzer::pop: no stages pushed");
  }
  stack_.pop_back();
}

void IncrementalAnalyzer::rewind(std::size_t depth) {
  if (depth > stack_.size()) {
    throw std::invalid_argument(
        "IncrementalAnalyzer::rewind: target depth " + std::to_string(depth) +
        " exceeds current depth " + std::to_string(stack_.size()));
  }
  stack_.resize(depth);
}

const analysis::CarryState& IncrementalAnalyzer::carry_at(
    std::size_t depth) const {
  if (depth > stack_.size()) {
    throw std::invalid_argument(
        "IncrementalAnalyzer::carry_at: depth " + std::to_string(depth) +
        " exceeds current depth " + std::to_string(stack_.size()));
  }
  return depth == 0 ? base_ : stack_[depth - 1].carry;
}

double IncrementalAnalyzer::final_success_with(
    const analysis::MklMatrices& mkl) const {
  const std::size_t n = width();
  if (depth() + 1 != n) {
    throw std::logic_error(
        "IncrementalAnalyzer::final_success_with: requires depth " +
        std::to_string(n - 1) + ", have " + std::to_string(depth()));
  }
  return analysis::final_success(mkl, profile_.p_a(n - 1), profile_.p_b(n - 1),
                                 carry_at(n - 1));
}

void IncrementalAnalyzer::enable_pmf_tracking(
    const analysis::PmfOptions& options) {
  if (depth() != 0) {
    throw std::logic_error(
        "IncrementalAnalyzer::enable_pmf_tracking: must be enabled at depth "
        "0, have " + std::to_string(depth()));
  }
  track_pmf_ = true;
  pmf_options_ = options;
  pmf_base_ = analysis::make_error_pmf_state(profile_.p_cin());
}

const analysis::ErrorPmfState& IncrementalAnalyzer::pmf_state_at(
    std::size_t depth) const {
  if (!track_pmf_) {
    throw std::logic_error(
        "IncrementalAnalyzer::pmf_state_at: PMF tracking not enabled");
  }
  if (depth > stack_.size()) {
    throw std::invalid_argument(
        "IncrementalAnalyzer::pmf_state_at: depth " + std::to_string(depth) +
        " exceeds current depth " + std::to_string(stack_.size()));
  }
  return depth == 0 ? pmf_base_ : stack_[depth - 1].pmf;
}

analysis::ErrorPmf IncrementalAnalyzer::error_pmf() const {
  return analysis::finalize_error_pmf(pmf_state_at(depth()), pmf_options_);
}

analysis::AnalysisResult IncrementalAnalyzer::finish(bool record_trace) const {
  const std::size_t n = width();
  if (depth() != n) {
    throw std::logic_error("IncrementalAnalyzer::finish: chain holds " +
                           std::to_string(depth()) + " of " +
                           std::to_string(n) + " stages");
  }
  analysis::AnalysisResult result;
  // P(Succ) closes over the carry state *before* the last stage, exactly
  // as the batch analyzer scores it (Equation 12).
  result.p_success = prob::require_probability(
      analysis::final_success(stack_[n - 1].mkl, profile_.p_a(n - 1),
                              profile_.p_b(n - 1), carry_at(n - 1)),
      "IncrementalAnalyzer P(Succ)");
  result.p_error = 1.0 - result.p_success;
  result.final_carry = carry_at(n);
  if (record_trace) {
    result.trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.trace.push_back(analysis::StageTrace{
          profile_.p_a(i), profile_.p_b(i), carry_at(i), carry_at(i + 1)});
    }
  }
  return result;
}

}  // namespace sealpaa::engine

// Many-chain structure-of-arrays evaluation of the paper's carry-state
// recursion (Equations 10-12).
//
// `ChainEvaluator` scores one chain at a time: per stage it builds the
// 1x8 input-probability matrix and takes two 8-term dot products.  DSE
// frontiers and service batches score dozens of chains against the same
// profile and palette, so `ChainBatchEvaluator` turns the recursion
// sideways: the carry states of all candidate chains live in two
// contiguous lane arrays (c0[], c1[]) and every stage advances all lanes
// together.
//
// Because the palette and profile are fixed, the per-stage arithmetic
// collapses.  With ab[j] the four operand products of stage i (shared by
// every lane) and M/K the candidate's selection vectors, Equation 11 is
// the 2x2 linear map
//
//   c0' = t00*c0 + t01*c1      t00 = sum_j ab[j]*k[2j]   t01 = .. k[2j+1]
//   c1' = t10*c0 + t11*c1      t10 = sum_j ab[j]*m[2j]   t11 = .. m[2j+1]
//
// and Equation 12 is u0*c0 + u1*c1 with u from L.  The six coefficients
// per (stage, candidate) are precomputed once at construction, so a lane
// advance costs one 2x2 FMA pair instead of an 8-term IPM build plus two
// dot products — and vectorizes trivially across lanes (AVX2/AVX-512
// kernels in batch_x86.cpp, runtime-dispatched like sim/bitsliced_x86).
//
// Determinism contract (see DESIGN.md decision 9):
//   * kStrict replays, per lane, the exact `analysis::advance_stage` /
//     `analysis::final_success` call sequence — bit-identical to
//     `RecursiveAnalyzer::analyze` and to `ChainEvaluator`, at scalar
//     speed.  Tests and byte-for-byte service responses use this mode.
//   * kFast uses the reassociated coefficient form above.  It is exact
//     in real arithmetic but rounds differently; results agree with
//     kStrict to ~1e-12 relative (enforced by tests and
//     bench_many_chain).  All kFast kernels (portable, AVX2, AVX-512)
//     compute the same formula; they differ from each other only in FMA
//     contraction, again within the documented tolerance.
//
// Not thread-safe; use one per thread (same contract as ChainEvaluator).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sealpaa/analysis/mkl.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/kernel_override.hpp"

namespace sealpaa::engine {

/// How a batch operation rounds: kStrict replays the scalar recursion's
/// call sequence per lane (bit-identical, scalar speed); kFast uses the
/// vectorized 2x2 coefficient kernels (~1e-12 relative of strict).
enum class BatchMode { kStrict, kFast };

/// The SIMD tier the fast kernels will actually run at right now:
/// min(what the CPU supports, the SEALPAA_FORCE_KERNEL cap).
[[nodiscard]] util::KernelLevel active_batch_kernel() noexcept;

/// Work accounting for the SoA path, reported through sealpaa::obs —
/// the counters that prove evaluation ran lane-parallel.
struct BatchStats {
  std::uint64_t batches = 0;    // batch operations submitted
  std::uint64_t lanes = 0;      // total lanes across those batches
  std::uint64_t max_lanes = 0;  // widest single batch
  /// Lane-stage advances performed (the SoA analogue of
  /// CacheStats::stages_computed).
  std::uint64_t lane_stages = 0;
  /// Of which through the reassociated kFast kernels (the rest ran the
  /// strict scalar-ordered path).
  std::uint64_t fast_lane_stages = 0;

  void merge(const BatchStats& other) noexcept {
    batches += other.batches;
    lanes += other.lanes;
    max_lanes = max_lanes < other.max_lanes ? other.max_lanes : max_lanes;
    lane_stages += other.lane_stages;
    fast_lane_stages += other.fast_lane_stages;
  }
};

/// Advances the carry states of many candidate chains together, one
/// stage at a time, against a fixed profile and candidate palette.
/// A chain is a sequence of candidate indices, least significant stage
/// first, exactly as in ChainEvaluator.
class ChainBatchEvaluator {
 public:
  /// Throws std::invalid_argument when `candidates` is empty or holds
  /// more than 255 cells (lane choices are bytes, matching the prefix
  /// keys of ChainEvaluator).
  ChainBatchEvaluator(multibit::InputProfile profile,
                      std::vector<adders::AdderCell> candidates);

  [[nodiscard]] std::size_t width() const noexcept {
    return profile_.width();
  }
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return mkls_.size();
  }
  [[nodiscard]] const multibit::InputProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const analysis::MklMatrices& mkl(std::size_t c) const {
    return mkls_.at(c);
  }

  /// Structure-of-arrays carry states: lane l is the CarryState
  /// {c0[l], c1[l]}.  Plain vectors so consumers can build, gather and
  /// scatter lanes without going through the evaluator.
  struct Lanes {
    std::vector<double> c0;
    std::vector<double> c1;

    [[nodiscard]] std::size_t size() const noexcept { return c0.size(); }
    [[nodiscard]] analysis::CarryState state(std::size_t l) const {
      return {c0.at(l), c1.at(l)};
    }
    void set(std::size_t l, const analysis::CarryState& s) {
      c0.at(l) = s.c0;
      c1.at(l) = s.c1;
    }
  };

  /// Fills `lanes` with `count` copies of the Equation 5 initial state.
  void init_lanes(Lanes& lanes, std::size_t count) const;

  /// Advances every lane through `stage`, lane l using candidate
  /// choices[l], in place.  choices.size() must equal lanes.size().
  void advance(std::size_t stage, std::span<const std::uint8_t> choices,
               Lanes& lanes, BatchMode mode);

  /// Gathered advance for frontier expansion: output lane l advances
  /// input lane parents[l] through `stage` with candidate choices[l].
  /// `out` is resized to choices.size(); `in` may be wider or narrower
  /// than `out` and is not modified.
  void advance_from(std::size_t stage, const Lanes& in,
                    std::span<const std::uint32_t> parents,
                    std::span<const std::uint8_t> choices, Lanes& out,
                    BatchMode mode);

  /// Equation 12 at the last stage: out[l] = P(Succ) of lane l's state
  /// extended by candidate choices[l].  Raw dot product, no clamping —
  /// the quantity DSE comparisons rank by.
  void final_success(const Lanes& lanes,
                     std::span<const std::uint8_t> choices,
                     std::span<double> out, BatchMode mode);

  /// Gathered form of final_success: lane l reads in.state(parents[l]).
  void final_success_from(const Lanes& in,
                          std::span<const std::uint32_t> parents,
                          std::span<const std::uint8_t> choices,
                          std::span<double> out, BatchMode mode);

  /// Full analyses of complete chains (each chains[i].size() == width())
  /// in one stage-major pass.  In kStrict mode element i is bit-identical
  /// to RecursiveAnalyzer::analyze on the same cells (enforced by
  /// tests/test_engine.cpp and bench_many_chain).
  [[nodiscard]] std::vector<analysis::AnalysisResult> evaluate(
      std::span<const std::span<const std::size_t>> chains, BatchMode mode);

  /// Records one consumer-level batch operation of `lanes` lanes.
  /// evaluate() calls this itself; consumers driving the stage API
  /// directly (ChainEvaluator::evaluate_batch, score_extensions) call it
  /// once per logical batch.
  void note_batch(std::size_t lanes) noexcept;

  [[nodiscard]] const BatchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BatchStats{}; }

 private:
  void check_stage(std::size_t stage) const;
  void check_choices(std::span<const std::uint8_t> choices) const;
  /// The six coefficients of (stage, candidate).
  [[nodiscard]] const double* coeff(std::size_t stage) const noexcept {
    return coeff_.data() + stage * mkls_.size() * 6;
  }
  void advance_in_place(std::size_t stage,
                        std::span<const std::uint8_t> choices, Lanes& lanes,
                        BatchMode mode);

  multibit::InputProfile profile_;
  std::vector<analysis::MklMatrices> mkls_;
  analysis::CarryState base_;  // Equation 5 initial state
  /// [stage][candidate][6]: t00, t01, t10, t11, u0, u1 (header comment).
  std::vector<double> coeff_;
  BatchStats stats_;
};

namespace detail {

/// The runtime-dispatched kFast kernels (batch_x86.cpp): `t` is the
/// stage's coefficient table, 6 doubles per candidate, and choices[l]
/// indexes it.  advance_lanes_fast rewrites c0/c1 in place;
/// final_lanes_fast writes u0*c0 + u1*c1 per lane into `out`.
void advance_lanes_fast(const double* t, const std::uint8_t* choices,
                        std::size_t n, double* c0, double* c1) noexcept;
void final_lanes_fast(const double* t, const std::uint8_t* choices,
                      std::size_t n, const double* c0, const double* c1,
                      double* out) noexcept;

}  // namespace detail

}  // namespace sealpaa::engine

#include "sealpaa/engine/method.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "sealpaa/analysis/block_error.hpp"
#include "sealpaa/baseline/inclusion_exclusion.hpp"
#include "sealpaa/engine/batch_evaluator.hpp"
#include "sealpaa/baseline/weighted_exhaustive.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::engine {

namespace {

constexpr std::array<MethodInfo, 7> kMethods = {{
    {Method::kRecursive, "recursive",
     "the paper's O(N) carry-state recursion", true},
    {Method::kInclusionExclusion, "inclusion-exclusion",
     "traditional 2^k-subset analysis (exponential)", true},
    {Method::kExhaustiveSim, "exhaustive",
     "simulate all input cases (uniform-0.5 inputs only)", true},
    {Method::kWeightedExhaustive, "weighted-exhaustive",
     "enumerate all input cases weighted by the profile", true},
    {Method::kMonteCarlo, "monte-carlo",
     "sampled simulation with Wilson confidence intervals", false},
    {Method::kAnalyticPmf, "analytic-pmf",
     "exact MED/MSE/WCE/PSNR via error-PMF propagation (no samples)", true},
    {Method::kBlockAnalytic, "block-analytic",
     "exact block-adder error statistics (requires a --blocks spec)", true},
}};

void require_matching_width(const multibit::AdderChain& chain,
                            const multibit::InputProfile& profile) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "engine::evaluate: chain width " + std::to_string(chain.width()) +
        " does not match profile width " + std::to_string(profile.width()));
  }
}

// PSNR against the exact adder for an N-bit output range: the same
// peak^2 / MSE convention apps/image.cpp uses with peak = 255.
double psnr_from_mse(std::size_t width, double mse) {
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  const double peak = std::pow(2.0, static_cast<double>(width)) - 1.0;
  return 10.0 * std::log10(peak * peak / mse);
}

DistributionStats stats_from_metrics(const sim::ErrorMetrics& metrics,
                                     std::size_t width) {
  DistributionStats stats;
  stats.error_rate = metrics.error_rate();
  stats.mean_error = metrics.mean_error();
  stats.mean_error_distance = metrics.mean_abs_error();
  stats.mean_squared_error = metrics.mean_squared_error();
  stats.worst_case_error = metrics.worst_case_error();
  stats.psnr_db = psnr_from_mse(width, stats.mean_squared_error);
  return stats;
}

}  // namespace

std::span<const MethodInfo> all_methods() { return kMethods; }

const MethodInfo& method_info(Method method) {
  for (const MethodInfo& info : kMethods) {
    if (info.method == method) return info;
  }
  throw std::invalid_argument("engine::method_info: unregistered method");
}

std::string_view method_name(Method method) {
  return method_info(method).name;
}

Method parse_method(std::string_view name) {
  for (const MethodInfo& info : kMethods) {
    if (info.name == name) return info.method;
  }
  std::string valid;
  for (const MethodInfo& info : kMethods) {
    if (!valid.empty()) valid += ", ";
    valid += info.name;
  }
  throw std::invalid_argument("unknown method '" + std::string(name) +
                              "' (valid: " + valid + ")");
}

Evaluation evaluate(const multibit::AdderChain& chain,
                    const multibit::InputProfile& profile, Method method,
                    const EvaluateOptions& options) {
  require_matching_width(chain, profile);
  Evaluation out;
  out.method = method;

  switch (method) {
    case Method::kRecursive: {
      analysis::AnalyzeOptions opts;
      opts.record_trace = options.record_trace;
      opts.counter = options.op_counter;
      analysis::AnalysisResult result =
          analysis::RecursiveAnalyzer::analyze(chain, profile, opts);
      out.p_error = result.p_error;
      out.p_success = result.p_success;
      out.work_items = chain.width();
      out.trace = std::move(result.trace);
      return out;
    }
    case Method::kInclusionExclusion: {
      const std::size_t max_width =
          options.max_width == 0 ? 20 : options.max_width;
      const baseline::InclusionExclusionResult result =
          baseline::InclusionExclusionAnalyzer::analyze(
              chain, profile, max_width, options.op_counter);
      out.p_error = result.p_error;
      out.p_success = result.p_success;
      out.work_items = result.terms_evaluated;
      return out;
    }
    case Method::kExhaustiveSim: {
      if (!profile.is_uniform(0.5)) {
        throw std::invalid_argument(
            "engine::evaluate: method 'exhaustive' assumes equally probable "
            "inputs (P=0.5 everywhere); use 'weighted-exhaustive' or "
            "'monte-carlo' for this profile");
      }
      const std::size_t max_width =
          options.max_width == 0 ? 13 : options.max_width;
      const sim::ExhaustiveSimReport report =
          sim::ExhaustiveSimulator::run(chain, max_width, options.threads,
                                        options.kernel);
      out.p_error = report.metrics.stage_failure_rate();
      out.p_success = 1.0 - out.p_error;
      out.work_items = report.metrics.cases();
      out.distribution = stats_from_metrics(report.metrics, chain.width());
      return out;
    }
    case Method::kWeightedExhaustive: {
      const std::size_t max_width =
          options.max_width == 0 ? 14 : options.max_width;
      const baseline::ExhaustiveReport report =
          baseline::WeightedExhaustive::analyze(chain, profile, max_width,
                                                options.threads,
                                                options.kernel);
      out.p_success = report.p_stage_success;
      out.p_error = 1.0 - report.p_stage_success;
      out.work_items = report.assignments;
      DistributionStats stats;
      stats.error_rate = 1.0 - report.p_value_correct;
      stats.mean_error = report.mean_error;
      stats.mean_error_distance = report.mean_abs_error;
      stats.mean_squared_error = report.mean_squared_error;
      stats.worst_case_error = report.worst_case_error;
      stats.psnr_db = psnr_from_mse(chain.width(), stats.mean_squared_error);
      out.distribution = stats;
      return out;
    }
    case Method::kMonteCarlo: {
      // run_parallel wants a concrete worker count; 0 means "the shared
      // pool's width" at this layer.
      const unsigned threads =
          options.threads == 0 ? util::default_threads() : options.threads;
      const sim::MonteCarloReport report = sim::MonteCarloSimulator::run_parallel(
          chain, profile, options.samples, threads, options.seed,
          options.kernel);
      out.p_error = report.metrics.stage_failure_rate();
      out.p_success = 1.0 - out.p_error;
      out.work_items = report.samples;
      out.stage_failure_ci = report.stage_failure_ci;
      out.distribution = stats_from_metrics(report.metrics, chain.width());
      return out;
    }
    case Method::kAnalyticPmf: {
      // Stage-level p_error/p_success run through the exact same
      // recursion call as Method::kRecursive — same floating-point
      // sequence, bit-identical result — while the distribution metrics
      // come from the propagated PMF.
      analysis::AnalyzeOptions opts;
      opts.record_trace = options.record_trace;
      opts.counter = options.op_counter;
      analysis::AnalysisResult result =
          analysis::RecursiveAnalyzer::analyze(chain, profile, opts);
      out.p_error = result.p_error;
      out.p_success = result.p_success;
      out.work_items = chain.width();
      out.trace = std::move(result.trace);

      const analysis::ErrorPmf pmf =
          analysis::propagate_error_pmf(chain, profile, options.pmf);
      DistributionStats stats;
      stats.error_rate = pmf.error_rate();
      stats.mean_error = pmf.mean_error();
      stats.mean_error_distance = pmf.mean_error_distance();
      stats.mean_squared_error = pmf.mean_squared_error();
      stats.worst_case_error = pmf.worst_case_error();
      stats.psnr_db = pmf.psnr_db(chain.width());
      out.distribution = stats;

      PmfSummary summary;
      summary.support = pmf.support_size();
      summary.total_mass = pmf.total_mass();
      summary.entropy_bits = pmf.entropy_bits();
      if (!pmf.empty()) {
        summary.min_value = pmf.min_value();
        summary.max_value = pmf.max_value();
      }
      summary.top = pmf.top_mass_points(options.pmf_top_k);
      out.pmf = summary;
      return out;
    }
    case Method::kBlockAnalytic: {
      if (!options.blocks) {
        throw std::invalid_argument(
            "engine::evaluate: method 'block-analytic' requires "
            "EvaluateOptions::blocks (a BlockChainSpec)");
      }
      const multibit::BlockChainSpec& spec = *options.blocks;
      if (static_cast<std::size_t>(spec.n()) != profile.width()) {
        throw std::invalid_argument(
            "engine::evaluate: block spec width " + std::to_string(spec.n()) +
            " does not match profile width " +
            std::to_string(profile.width()));
      }
      analysis::BlockAnalysisOptions opts;
      opts.pmf = options.pmf;
      const analysis::BlockAnalysis result =
          analysis::BlockErrorModel::analyze(spec, profile, opts);
      out.p_error = result.p_error;
      out.p_success = 1.0 - result.p_error;
      out.work_items = static_cast<std::uint64_t>(spec.n());

      const analysis::ErrorPmf& pmf = result.pmf;
      DistributionStats stats;
      stats.error_rate = pmf.error_rate();
      stats.mean_error = pmf.mean_error();
      stats.mean_error_distance = pmf.mean_error_distance();
      stats.mean_squared_error = pmf.mean_squared_error();
      stats.worst_case_error = pmf.worst_case_error();
      stats.psnr_db = pmf.psnr_db(profile.width());
      out.distribution = stats;

      PmfSummary summary;
      summary.support = pmf.support_size();
      summary.total_mass = pmf.total_mass();
      summary.entropy_bits = pmf.entropy_bits();
      if (!pmf.empty()) {
        summary.min_value = pmf.min_value();
        summary.max_value = pmf.max_value();
      }
      summary.top = pmf.top_mass_points(options.pmf_top_k);
      out.pmf = summary;
      return out;
    }
  }
  throw std::invalid_argument("engine::evaluate: unregistered method");
}

Evaluation evaluate(const adders::AdderCell& cell,
                    const multibit::InputProfile& profile, Method method,
                    const EvaluateOptions& options) {
  return evaluate(multibit::AdderChain::homogeneous(cell, profile.width()),
                  profile, method, options);
}

std::vector<Evaluation> evaluate_batch(
    std::span<const multibit::AdderChain> chains,
    const multibit::InputProfile& profile, Method method,
    const EvaluateOptions& options) {
  std::vector<Evaluation> out;
  out.reserve(chains.size());
  if (chains.empty()) return out;
  for (const multibit::AdderChain& chain : chains) {
    require_matching_width(chain, profile);
  }

  // The SoA pass covers the common case: the recursion, untraced.  A
  // trace or an op counter needs the per-stage scalar walk, and a
  // palette beyond 255 distinct cells cannot be expressed as lane bytes.
  bool batchable = method == Method::kRecursive && !options.record_trace &&
                   options.op_counter == nullptr;
  std::vector<adders::AdderCell> palette;
  std::vector<std::vector<std::size_t>> indices;
  if (batchable) {
    indices.resize(chains.size());
    for (std::size_t l = 0; l < chains.size() && batchable; ++l) {
      indices[l].reserve(chains[l].width());
      for (const adders::AdderCell& cell : chains[l].stages()) {
        std::size_t c = 0;
        while (c < palette.size() && !(palette[c] == cell)) ++c;
        if (c == palette.size()) {
          if (palette.size() == 255) {
            batchable = false;
            break;
          }
          palette.push_back(cell);
        }
        indices[l].push_back(c);
      }
    }
  }
  if (!batchable) {
    for (const multibit::AdderChain& chain : chains) {
      out.push_back(evaluate(chain, profile, method, options));
    }
    return out;
  }

  ChainBatchEvaluator batch(profile, std::move(palette));
  std::vector<std::span<const std::size_t>> lanes;
  lanes.reserve(chains.size());
  for (const std::vector<std::size_t>& chain : indices) {
    lanes.push_back(chain);
  }
  const std::vector<analysis::AnalysisResult> results =
      batch.evaluate(lanes, BatchMode::kStrict);
  for (std::size_t l = 0; l < results.size(); ++l) {
    Evaluation evaluation;
    evaluation.method = method;
    evaluation.p_error = results[l].p_error;
    evaluation.p_success = results[l].p_success;
    evaluation.work_items = chains[l].width();
    out.push_back(evaluation);
  }
  return out;
}

}  // namespace sealpaa::engine

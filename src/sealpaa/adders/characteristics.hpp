// Physical characteristics of the built-in cells (the paper's Table 2,
// taken from Gupta et al. [7], 65 nm):  per-cell power and area.  These
// feed the design-space-exploration layer, which trades error probability
// against power/area when building hybrid multi-bit adders.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sealpaa/adders/cell.hpp"

namespace sealpaa::adders {

/// Power/area data for one cell.  LPAA 6/7 come from a different paper
/// ([1]) that reports no comparable 65 nm numbers, hence `optional`.
struct CellCharacteristics {
  std::string cell_name;
  int error_cases = 0;             // erroneous truth-table rows
  std::optional<double> power_nw;  // dynamic power, nanowatt
  std::optional<double> area_ge;   // area, gate equivalents
};

/// Characteristics table for the built-in cells (AccuFA + LPAA1-7).
/// AccuFA is normalised to the conventional mirror-adder numbers used as
/// the 1.0x baseline in [7].
[[nodiscard]] const std::vector<CellCharacteristics>& builtin_characteristics();

/// Looks up the characteristics of `cell` by name; nullptr when unknown.
[[nodiscard]] const CellCharacteristics* find_characteristics(
    const AdderCell& cell);

/// Total power (nW) of an N-stage chain of `cell`; nullopt when the cell
/// has no power data.
[[nodiscard]] std::optional<double> chain_power_nw(const AdderCell& cell,
                                                   int stages);

}  // namespace sealpaa::adders

#include "sealpaa/adders/expr.hpp"

#include <cctype>
#include <stdexcept>

namespace sealpaa::adders {

namespace {

// Recursive-descent parser/evaluator over a fixed (a, b, cin) binding.
class Parser {
 public:
  Parser(std::string_view text, bool a, bool b, bool cin)
      : text_(text), a_(a), b_(b), cin_(cin) {}

  bool parse() {
    const bool value = parse_or();
    skip_space();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("expression error at position " +
                                std::to_string(pos_) + ": " + message +
                                " in '" + std::string(text_) + "'");
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_or() {
    bool value = parse_xor();
    while (consume('|')) value = parse_xor() || value;
    return value;
  }

  bool parse_xor() {
    bool value = parse_and();
    while (consume('^')) value = parse_and() != value;
    return value;
  }

  bool parse_and() {
    bool value = parse_unary();
    while (consume('&')) {
      const bool rhs = parse_unary();
      value = value && rhs;
    }
    return value;
  }

  bool parse_unary() {
    if (consume('~') || consume('!')) return !parse_unary();
    return parse_primary();
  }

  bool parse_primary() {
    skip_space();
    if (pos_ >= text_.size()) fail("expected operand");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      const bool value = parse_or();
      if (!consume(')')) fail("expected ')'");
      return value;
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return c == '1';
    }
    if (c == 'a' || c == 'A') {
      ++pos_;
      return a_;
    }
    if (c == 'b' || c == 'B') {
      ++pos_;
      return b_;
    }
    if (c == 'c' || c == 'C') {
      ++pos_;
      // Accept both 'c' and 'cin'.
      if (pos_ + 1 < text_.size() &&
          (text_[pos_] == 'i' || text_[pos_] == 'I') &&
          (text_[pos_ + 1] == 'n' || text_[pos_ + 1] == 'N')) {
        pos_ += 2;
      }
      return cin_;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  bool a_;
  bool b_;
  bool cin_;
  std::size_t pos_ = 0;
};

}  // namespace

bool evaluate_expression(std::string_view expression, bool a, bool b,
                         bool cin) {
  return Parser(expression, a, b, cin).parse();
}

AdderCell cell_from_expressions(std::string name, std::string_view sum_expr,
                                std::string_view cout_expr,
                                std::string description) {
  AdderCell::Rows rows{};
  for (std::size_t row = 0; row < AdderCell::kRows; ++row) {
    const bool a = (row & 4U) != 0;
    const bool b = (row & 2U) != 0;
    const bool cin = (row & 1U) != 0;
    rows[row].sum = evaluate_expression(sum_expr, a, b, cin);
    rows[row].carry = evaluate_expression(cout_expr, a, b, cin);
  }
  return AdderCell(std::move(name), rows, std::move(description));
}

}  // namespace sealpaa::adders

// Boolean-expression front end for defining custom cells.
//
// Downstream users rarely have truth tables at hand; they have logic
// equations from a paper or a netlist.  This parser turns expressions
// over the inputs a, b, cin into an AdderCell by evaluating all eight
// input combinations, e.g.
//
//   cell_from_expressions("MyAdder",
//                         "a ^ b ^ cin",
//                         "(a & b) | (cin & (a ^ b))");
//
// Grammar (precedence low to high): '|'  '^'  '&'  '~'; parentheses;
// literals 0/1; variables a, b, c/cin.  Throws std::invalid_argument
// with a character position on malformed input.
#pragma once

#include <string>
#include <string_view>

#include "sealpaa/adders/cell.hpp"

namespace sealpaa::adders {

/// Builds a cell by evaluating the two expressions on every input row.
[[nodiscard]] AdderCell cell_from_expressions(std::string name,
                                              std::string_view sum_expr,
                                              std::string_view cout_expr,
                                              std::string description = {});

/// Evaluates one boolean expression for given input values (exposed for
/// testing and for ad-hoc probes).
[[nodiscard]] bool evaluate_expression(std::string_view expression, bool a,
                                       bool b, bool cin);

}  // namespace sealpaa::adders

#include "sealpaa/adders/cell.hpp"

#include <sstream>
#include <stdexcept>

namespace sealpaa::adders {

AdderCell::AdderCell(std::string name, Rows rows, std::string description)
    : name_(std::move(name)),
      description_(std::move(description)),
      rows_(rows) {}

AdderCell AdderCell::from_columns(std::string name,
                                  std::string_view sum_column,
                                  std::string_view carry_column,
                                  std::string description) {
  if (sum_column.size() != kRows || carry_column.size() != kRows) {
    throw std::invalid_argument(
        "AdderCell::from_columns: columns must have exactly 8 characters");
  }
  const auto bit = [&](char c, const char* which) -> bool {
    if (c == '0') return false;
    if (c == '1') return true;
    throw std::invalid_argument(std::string("AdderCell::from_columns: ") +
                                which + " column contains '" + c +
                                "', expected '0' or '1'");
  };
  Rows rows{};
  for (std::size_t i = 0; i < kRows; ++i) {
    rows[i].sum = bit(sum_column[i], "sum");
    rows[i].carry = bit(carry_column[i], "carry");
  }
  return AdderCell(std::move(name), rows, std::move(description));
}

const AdderCell::Rows& AdderCell::accurate_rows() noexcept {
  static const Rows rows = [] {
    Rows r{};
    for (std::size_t i = 0; i < kRows; ++i) {
      const int a = static_cast<int>((i >> 2) & 1U);
      const int b = static_cast<int>((i >> 1) & 1U);
      const int c = static_cast<int>(i & 1U);
      const int total = a + b + c;
      r[i].sum = (total & 1) != 0;
      r[i].carry = total >= 2;
    }
    return r;
  }();
  return rows;
}

bool AdderCell::row_is_success(std::size_t row) const noexcept {
  return rows_[row] == accurate_rows()[row];
}

std::array<bool, AdderCell::kRows> AdderCell::success_mask() const noexcept {
  std::array<bool, kRows> mask{};
  for (std::size_t i = 0; i < kRows; ++i) mask[i] = row_is_success(i);
  return mask;
}

int AdderCell::error_case_count() const noexcept {
  int errors = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    if (!row_is_success(i)) ++errors;
  }
  return errors;
}

int AdderCell::sum_error_count() const noexcept {
  int errors = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    if (rows_[i].sum != accurate_rows()[i].sum) ++errors;
  }
  return errors;
}

int AdderCell::carry_error_count() const noexcept {
  int errors = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    if (rows_[i].carry != accurate_rows()[i].carry) ++errors;
  }
  return errors;
}

std::string AdderCell::to_string() const {
  std::ostringstream out;
  out << name_ << " (A B Cin -> Sum Cout)\n";
  for (std::size_t i = 0; i < kRows; ++i) {
    out << ((i >> 2) & 1U) << ' ' << ((i >> 1) & 1U) << ' ' << (i & 1U)
        << "  ->  " << rows_[i].sum << ' ' << rows_[i].carry
        << (row_is_success(i) ? "" : "   [error case]") << '\n';
  }
  return out.str();
}

}  // namespace sealpaa::adders

// Single-bit (full-adder) cell model.
//
// A cell is completely described by its 8-row truth table (Table 1 of the
// paper).  Everything else in the library — the M/K/L analysis matrices,
// simulators, error-case accounting — derives from this one artifact, so
// adding a new approximate adder is a single table literal.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

namespace sealpaa::adders {

/// The two output bits of a full-adder cell for one input combination.
struct BitPair {
  bool sum = false;
  bool carry = false;

  friend constexpr bool operator==(BitPair a, BitPair b) noexcept {
    return a.sum == b.sum && a.carry == b.carry;
  }
};

/// An immutable single-bit adder cell described by its truth table.
///
/// Truth table rows are indexed by the input combination
/// `(A << 2) | (B << 1) | Cin`, i.e. row 0 is (A=0,B=0,Cin=0) and row 7 is
/// (1,1,1) — the same ordering the paper uses for Table 1 and for the IPM
/// vector (Equation 10).
class AdderCell {
 public:
  static constexpr std::size_t kRows = 8;
  using Rows = std::array<BitPair, kRows>;

  AdderCell(std::string name, Rows rows, std::string description = {});

  /// Builds a cell from two 8-character strings of '0'/'1' listing the sum
  /// and carry-out columns in row order.  Throws std::invalid_argument on
  /// malformed input.  Example (accurate FA):
  ///   AdderCell::from_columns("AccuFA", "01101001", "00010111");
  [[nodiscard]] static AdderCell from_columns(std::string name,
                                              std::string_view sum_column,
                                              std::string_view carry_column,
                                              std::string description = {});

  /// Row index for a given input combination.
  [[nodiscard]] static constexpr std::size_t row_index(bool a, bool b,
                                                       bool cin) noexcept {
    return (static_cast<std::size_t>(a) << 2) |
           (static_cast<std::size_t>(b) << 1) | static_cast<std::size_t>(cin);
  }

  /// Evaluates the cell on one input combination.
  [[nodiscard]] BitPair output(bool a, bool b, bool cin) const noexcept {
    return rows_[row_index(a, b, cin)];
  }

  [[nodiscard]] const Rows& rows() const noexcept { return rows_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

  /// The accurate full-adder truth table (row i: sum = popcount parity,
  /// carry = majority).
  [[nodiscard]] static const Rows& accurate_rows() noexcept;

  /// True when row `row` matches the accurate full adder in both outputs.
  [[nodiscard]] bool row_is_success(std::size_t row) const noexcept;

  /// Per-row success flags; this is exactly the L matrix of the paper
  /// (Table 5) in boolean form.
  [[nodiscard]] std::array<bool, kRows> success_mask() const noexcept;

  /// Number of erroneous truth-table rows ("Error Cases" in Table 2).
  [[nodiscard]] int error_case_count() const noexcept;

  /// True when the cell is the exact full adder.
  [[nodiscard]] bool is_exact() const noexcept {
    return error_case_count() == 0;
  }

  /// Number of rows whose *sum* bit is wrong / whose *carry* bit is wrong.
  [[nodiscard]] int sum_error_count() const noexcept;
  [[nodiscard]] int carry_error_count() const noexcept;

  /// Renders the truth table like the paper's Table 1 (one line per row).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const AdderCell& a, const AdderCell& b) noexcept {
    return a.rows_ == b.rows_;
  }

 private:
  std::string name_;
  std::string description_;
  Rows rows_{};
};

}  // namespace sealpaa::adders

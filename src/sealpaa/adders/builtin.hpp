// Built-in adder cells: the accurate full adder plus the seven low-power
// approximate adders (LPAA 1-7) of the paper's Table 1.  LPAA 1-5 are the
// approximate mirror adders of Gupta et al. [7]; LPAA 6-7 are the inexact
// cells of Almurib et al. [1].
#pragma once

#include <span>
#include <string_view>

#include "sealpaa/adders/cell.hpp"

namespace sealpaa::adders {

/// Number of built-in approximate cells (LPAA 1..7).
inline constexpr int kBuiltinLpaaCount = 7;

/// The accurate (exact) full adder, "AccuFA" in the paper.
[[nodiscard]] const AdderCell& accurate();

/// The paper's LPAA `index` for `index` in [1, 7].
/// Throws std::out_of_range otherwise.
[[nodiscard]] const AdderCell& lpaa(int index);

/// All seven approximate cells, index 0 holding LPAA 1.
[[nodiscard]] std::span<const AdderCell> builtin_lpaas();

/// All built-in cells including the accurate one (index 0 = AccuFA).
[[nodiscard]] std::span<const AdderCell> all_builtin_cells();

/// Looks a built-in cell up by name ("AccuFA", "LPAA1".."LPAA7",
/// case-sensitive); returns nullptr when unknown.
[[nodiscard]] const AdderCell* find_builtin(std::string_view name);

}  // namespace sealpaa::adders

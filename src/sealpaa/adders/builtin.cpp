#include "sealpaa/adders/builtin.hpp"

#include <stdexcept>
#include <vector>

namespace sealpaa::adders {

namespace {

// Truth-table columns transcribed from Table 1 of the paper; row order is
// (A,B,Cin) = 000, 001, 010, 011, 100, 101, 110, 111.
std::vector<AdderCell> make_builtin_cells() {
  std::vector<AdderCell> cells;
  cells.reserve(1 + kBuiltinLpaaCount);
  cells.push_back(AdderCell::from_columns(
      "AccuFA", "01101001", "00010111", "Accurate 1-bit full adder"));
  cells.push_back(AdderCell::from_columns(
      "LPAA1", "01000001", "00110111",
      "Approximate mirror adder 1 of Gupta et al. [7]"));
  cells.push_back(AdderCell::from_columns(
      "LPAA2", "11101000", "00010111",
      "Approximate mirror adder 2 of Gupta et al. [7] (same table as "
      "Approximate Adder 3 of Almurib et al. [1])"));
  cells.push_back(AdderCell::from_columns(
      "LPAA3", "11001000", "00110111",
      "Approximate mirror adder 3 of Gupta et al. [7]"));
  cells.push_back(AdderCell::from_columns(
      "LPAA4", "01010001", "00001111",
      "Approximate mirror adder 4 of Gupta et al. [7]"));
  cells.push_back(AdderCell::from_columns(
      "LPAA5", "00110011", "00001111",
      "Wire-only adder of Gupta et al. [7]: Sum = B, Cout = A (zero "
      "transistors)"));
  cells.push_back(AdderCell::from_columns(
      "LPAA6", "01101001", "01010101",
      "Inexact cell 1 of Almurib et al. [1]: exact Sum, approximate Cout"));
  cells.push_back(AdderCell::from_columns(
      "LPAA7", "01111101", "00010111",
      "Inexact cell 2 of Almurib et al. [1]"));
  return cells;
}

const std::vector<AdderCell>& builtin_cells() {
  static const std::vector<AdderCell> cells = make_builtin_cells();
  return cells;
}

}  // namespace

const AdderCell& accurate() { return builtin_cells().front(); }

const AdderCell& lpaa(int index) {
  if (index < 1 || index > kBuiltinLpaaCount) {
    throw std::out_of_range("lpaa: index " + std::to_string(index) +
                            " outside [1, 7]");
  }
  return builtin_cells()[static_cast<std::size_t>(index)];
}

std::span<const AdderCell> builtin_lpaas() {
  return {builtin_cells().data() + 1,
          static_cast<std::size_t>(kBuiltinLpaaCount)};
}

std::span<const AdderCell> all_builtin_cells() {
  return {builtin_cells().data(), builtin_cells().size()};
}

const AdderCell* find_builtin(std::string_view name) {
  for (const AdderCell& cell : builtin_cells()) {
    if (cell.name() == name) return &cell;
  }
  return nullptr;
}

}  // namespace sealpaa::adders

#include "sealpaa/adders/characteristics.hpp"

#include "sealpaa/adders/builtin.hpp"

namespace sealpaa::adders {

const std::vector<CellCharacteristics>& builtin_characteristics() {
  // Power/area per Table 2 of the paper (from [7], 65 nm).  The accurate
  // mirror adder baseline in [7] is ~1385 nW / 5.9 GE; the paper's table
  // lists only the approximate cells, so AccuFA carries the [7] baseline.
  static const std::vector<CellCharacteristics> table = {
      {"AccuFA", 0, 1385.0, 5.90},
      {"LPAA1", 2, 771.0, 4.23},
      {"LPAA2", 2, 294.0, 1.94},
      {"LPAA3", 3, 198.0, 1.59},
      {"LPAA4", 3, 416.0, 1.76},
      {"LPAA5", 4, 0.0, 0.0},
      {"LPAA6", 2, std::nullopt, std::nullopt},
      {"LPAA7", 2, std::nullopt, std::nullopt},
  };
  return table;
}

const CellCharacteristics* find_characteristics(const AdderCell& cell) {
  for (const CellCharacteristics& row : builtin_characteristics()) {
    if (row.cell_name == cell.name()) return &row;
  }
  return nullptr;
}

std::optional<double> chain_power_nw(const AdderCell& cell, int stages) {
  const CellCharacteristics* row = find_characteristics(cell);
  if (row == nullptr || !row->power_nw.has_value()) return std::nullopt;
  return *row->power_nw * stages;
}

}  // namespace sealpaa::adders

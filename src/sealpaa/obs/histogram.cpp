#include "sealpaa/obs/histogram.hpp"

#include <bit>

namespace sealpaa::obs {

namespace {

[[nodiscard]] std::size_t bucket_of(std::uint64_t value) noexcept {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
}

/// Inclusive upper edge of bucket k: 2^(k+1) - 1, saturating at the top.
[[nodiscard]] std::uint64_t upper_edge(std::size_t bucket) noexcept {
  if (bucket + 1 >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << (bucket + 1)) - 1;
}

}  // namespace

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_of(value)] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += 1;
  sum_ += value;  // wraps only after ~584k years of microseconds
}

double Histogram::mean() const noexcept {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile_upper_bound(double quantile) const noexcept {
  if (count_ == 0) return 0;
  if (quantile < 0.0) quantile = 0.0;
  if (quantile > 1.0) quantile = 1.0;
  const double target = quantile * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    seen += buckets_[bucket];
    if (static_cast<double>(seen) >= target && seen > 0) {
      return upper_edge(bucket);
    }
  }
  return upper_edge(kBuckets - 1);
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    buckets_[bucket] += other.buckets_[bucket];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Json Histogram::to_json() const {
  Json out = Json::object();
  out.set("count", Json(count_));
  out.set("sum", Json(sum_));
  out.set("min", Json(min()));
  out.set("max", Json(max_));
  out.set("mean", Json(mean()));
  out.set("p50", Json(quantile_upper_bound(0.5)));
  out.set("p99", Json(quantile_upper_bound(0.99)));
  Json buckets = Json::array();
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    if (buckets_[bucket] == 0) continue;
    Json entry = Json::object();
    entry.set("le", Json(upper_edge(bucket)));
    entry.set("count", Json(buckets_[bucket]));
    buckets.push_back(std::move(entry));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

}  // namespace sealpaa::obs

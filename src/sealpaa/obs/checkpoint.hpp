// JSON (de)serialization and atomic file I/O for branch-and-bound
// checkpoints (explore::BnbCheckpoint).
//
// Lives in obs — explore sits below the JSON layer, so the optimizer
// only produces/consumes the plain struct and this module owns the
// durable representation.  The incumbent score is stored twice: as a
// human-readable double and as the hex bit pattern of its IEEE-754
// representation ("score_bits"), which is what parse reads back, so a
// resume compares against *exactly* the score the suspended run held —
// decimal round-tripping would perturb the strict (score, index)
// incumbent order.
//
// Files are written atomically (temp file in the same directory, then
// std::rename), so a checkpoint on disk is always either the previous
// complete snapshot or the new one, never a torn write.
#pragma once

#include <string>

#include "sealpaa/explore/branch_bound.hpp"
#include "sealpaa/obs/json.hpp"

namespace sealpaa::obs {

/// Versioned document ({"schema": "sealpaa.bnb-checkpoint",
/// "version": 1, ...}).
[[nodiscard]] Json to_json(const explore::BnbCheckpoint& checkpoint);

/// Inverse of to_json.  Throws std::invalid_argument on a wrong schema
/// tag, an unsupported version or a structurally malformed document.
[[nodiscard]] explore::BnbCheckpoint parse_bnb_checkpoint(const Json& doc);

/// Serializes and atomically replaces `path` (write to `path` + ".tmp",
/// then rename).  Throws std::runtime_error on I/O failure.
void write_bnb_checkpoint(const std::string& path,
                          const explore::BnbCheckpoint& checkpoint);

/// Reads and parses a checkpoint file.  Throws std::runtime_error when
/// the file cannot be read, std::invalid_argument when it does not
/// parse as a checkpoint.
[[nodiscard]] explore::BnbCheckpoint read_bnb_checkpoint(
    const std::string& path);

}  // namespace sealpaa::obs

// Versioned JSON run reports — the machine-readable output channel of
// every sealpaa entry point (CLI subcommands and bench executables).
//
// Document layout (schema "sealpaa.run-report", version 1):
//
//   {
//     "schema": "sealpaa.run-report",
//     "schema_version": 1,
//     "tool": "<binary or subcommand name>",
//     "generated_unix": <seconds since epoch>,
//     "hardware_threads": <unsigned>,
//     "args": { "<flag>": "<value>", ..., "positional": [...] },
//     "counters": { <hierarchical counter tree> },
//     "sections": { "<name>": { ... tool-specific payload ... } }
//   }
//
// The schema name/version pair is the compatibility contract: consumers
// (CI validation, the perf-trajectory tooling) key on it and additions
// must stay backward compatible within a version.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sealpaa/obs/counters.hpp"
#include "sealpaa/obs/json.hpp"
#include "sealpaa/util/cli.hpp"

namespace sealpaa::obs {

class RunReport {
 public:
  static constexpr std::string_view kSchema = "sealpaa.run-report";
  static constexpr int kSchemaVersion = 1;
  /// The global CLI flag every entry point honours: `--json-report=FILE`.
  static constexpr const char* kFlag = "json-report";

  explicit RunReport(std::string tool);

  /// Echoes the parsed command line into the report's "args" object.
  void record_args(const util::CliArgs& args);

  /// Returns the named section object under "sections", creating it on
  /// first use.  Sections are tool-specific payloads.
  Json& section(const std::string& name);

  [[nodiscard]] Counters& counters() noexcept { return counters_; }

  [[nodiscard]] const std::string& tool() const noexcept { return tool_; }

  /// Assembles the full document.
  [[nodiscard]] Json to_json() const;

  /// Writes the document to `path` (throws std::runtime_error on I/O
  /// failure).  The file always ends with a newline.
  void write_file(const std::string& path) const;

 private:
  std::string tool_;
  std::int64_t generated_unix_ = 0;
  Json args_ = Json::object();
  Json sections_ = Json::object();
  Counters counters_;
};

/// Resolves where a report should be written: `--json-report=PATH` wins;
/// otherwise `default_path` (benches pass their BENCH_*.json name, the
/// CLI passes "" = disabled); `--no-json` suppresses the default.  A bare
/// `--json-report` with no value is rejected with std::invalid_argument.
[[nodiscard]] std::optional<std::string> report_path(
    const util::CliArgs& args, const std::string& default_path = "");

}  // namespace sealpaa::obs

// JSON projections of the library's report/metric types — the glue
// between the engines (which keep returning plain structs) and the
// RunReport sink.  Every entry point that honours --json-report builds
// its sections from these.
#pragma once

#include <vector>

#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/explore/pareto.hpp"
#include "sealpaa/obs/json.hpp"
#include "sealpaa/prob/stats.hpp"
#include "sealpaa/sim/exhaustive.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/sim/montecarlo.hpp"
#include "sealpaa/util/op_counter.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::obs {

/// {"low": .., "high": .., "width": ..} — or null for the empty interval,
/// so zero-sample runs serialize as "no CI" rather than NaN or [0, 1].
[[nodiscard]] Json to_json(const prob::Interval& interval);

/// {"multiplications": .., "additions": .., "comparisons": ..,
///  "memory_units": ..}
[[nodiscard]] Json to_json(const util::OpCounts& counts);

/// {"threads": .., "wall_seconds": .., "cpu_seconds": .., "speedup": ..,
///  "shards": [{"shard": .., "items": .., "seconds": ..}, ...]}
[[nodiscard]] Json to_json(const util::ShardTimings& timings);

/// {"tasks_executed": .., "queue_high_water": ..,
///  "total_busy_seconds": .., "worker_busy_seconds": [..]}
[[nodiscard]] Json to_json(const util::ThreadPool::Stats& stats);

/// All quality measures of a metrics accumulator: cases, error counts,
/// rates, moments and the worst-case error.
[[nodiscard]] Json to_json(const sim::ErrorMetrics& metrics);

/// Full Monte Carlo report: samples, seconds, metrics, both Wilson CIs
/// and the per-shard timing breakdown.
[[nodiscard]] Json to_json(const sim::MonteCarloReport& report);

/// Full exhaustive-sweep report.
[[nodiscard]] Json to_json(const sim::ExhaustiveSimReport& report);

/// Prefix-cache accounting of an engine::ChainEvaluator.
[[nodiscard]] Json to_json(const engine::CacheStats& stats);

/// SoA batch accounting of an engine::ChainBatchEvaluator — batches,
/// lanes (total and widest), and lane-stage advances split by kernel
/// path.  max_lanes > 1 is the report-level proof a consumer evaluated
/// lane-parallel.
[[nodiscard]] Json to_json(const engine::BatchStats& stats);

/// Uniform engine evaluation: method name, probabilities, work measure,
/// (Monte Carlo only) the stage-failure CI, and — when the method
/// produced them — the value-level "distribution" block (error rate,
/// MED, MSE, WCE, PSNR) and the "pmf" summary (support size, mass,
/// entropy, extrema, top-k mass points).
[[nodiscard]] Json to_json(const engine::Evaluation& evaluation);

/// Search accounting of one optimizer run, including its prefix-cache
/// counters.
[[nodiscard]] Json to_json(const explore::SearchStats& stats);

/// A fully evaluated hybrid design including its search stats.
[[nodiscard]] Json to_json(const explore::HybridDesign& design);

/// One DSE design point; cost fields are null when Table 2 lacks data.
[[nodiscard]] Json to_json(const explore::DesignPoint& point);

/// Array of design points.
[[nodiscard]] Json to_json(const std::vector<explore::DesignPoint>& points);

/// Pareto filter accounting.
[[nodiscard]] Json to_json(const explore::ParetoStats& stats);

}  // namespace sealpaa::obs

#include "sealpaa/obs/counters.hpp"

#include <algorithm>
#include <ctime>
#include <utility>
#include <vector>

namespace sealpaa::obs {

void Counters::add(const std::string& path, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  integers_[path] += n;
}

void Counters::note_max(const std::string& path, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t& slot = integers_[path];
  slot = std::max(slot, value);
}

void Counters::add_real(const std::string& path, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  reals_[path] += value;
}

std::uint64_t Counters::value(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = integers_.find(path);
  return it == integers_.end() ? 0 : it->second;
}

double Counters::real_value(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = reals_.find(path);
  return it == reals_.end() ? 0.0 : it->second;
}

void Counters::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  integers_.clear();
  reals_.clear();
}

namespace {

// Walks "a/b/c" down from `root`, creating nested objects, and sets the
// leaf "c" to `value`.
void set_path(Json& root, const std::string& path, Json value) {
  Json* node = &root;
  std::size_t start = 0;
  for (;;) {
    const std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      node->set(path.substr(start), std::move(value));
      return;
    }
    const std::string segment = path.substr(start, slash - start);
    Json* child = const_cast<Json*>(node->find(segment));
    if (child == nullptr || child->type() != Json::Type::Object) {
      child = &node->set(segment, Json::object());
    }
    node = child;
    start = slash + 1;
  }
}

}  // namespace

Json Counters::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json root = Json::object();
  for (const auto& [path, value] : integers_) set_path(root, path, Json(value));
  for (const auto& [path, value] : reals_) set_path(root, path, Json(value));
  return root;
}

double process_cpu_seconds() noexcept {
  return static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

ScopedTimer::ScopedTimer(Counters& counters, std::string path)
    : counters_(counters),
      path_(std::move(path)),
      cpu_start_(process_cpu_seconds()) {}

ScopedTimer::~ScopedTimer() { stop(); }

void ScopedTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  counters_.add_real(path_ + "/wall_seconds", wall_.elapsed_seconds());
  counters_.add_real(path_ + "/cpu_seconds",
                     process_cpu_seconds() - cpu_start_);
}

}  // namespace sealpaa::obs

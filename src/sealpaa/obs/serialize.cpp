#include "sealpaa/obs/serialize.hpp"

namespace sealpaa::obs {

Json to_json(const prob::Interval& interval) {
  if (interval.empty()) return Json();  // null: no data, not [0, 1]
  Json out = Json::object();
  out.set("low", Json(interval.low));
  out.set("high", Json(interval.high));
  out.set("width", Json(interval.width()));
  return out;
}

Json to_json(const util::OpCounts& counts) {
  Json out = Json::object();
  out.set("multiplications", Json(counts.multiplications));
  out.set("additions", Json(counts.additions));
  out.set("comparisons", Json(counts.comparisons));
  out.set("memory_units", Json(counts.memory_units));
  out.set("total_arithmetic", Json(counts.total_arithmetic()));
  return out;
}

Json to_json(const util::ShardTimings& timings) {
  Json out = Json::object();
  out.set("threads", Json(timings.threads));
  out.set("wall_seconds", Json(timings.wall_seconds));
  out.set("cpu_seconds", Json(timings.cpu_seconds()));
  out.set("max_shard_seconds", Json(timings.max_shard_seconds()));
  out.set("speedup", Json(timings.speedup()));
  Json shards = Json::array();
  for (const util::ShardTiming& shard : timings.shards) {
    Json entry = Json::object();
    entry.set("shard", Json(shard.shard));
    entry.set("items", Json(shard.items));
    entry.set("seconds", Json(shard.seconds));
    shards.push_back(std::move(entry));
  }
  out.set("shards", std::move(shards));
  return out;
}

Json to_json(const util::ThreadPool::Stats& stats) {
  Json out = Json::object();
  out.set("tasks_executed", Json(stats.tasks_executed));
  out.set("queue_high_water", Json(stats.queue_high_water));
  out.set("total_busy_seconds", Json(stats.total_busy_seconds()));
  Json workers = Json::array();
  for (const double seconds : stats.worker_busy_seconds) {
    workers.push_back(Json(seconds));
  }
  out.set("worker_busy_seconds", std::move(workers));
  return out;
}

Json to_json(const sim::ErrorMetrics& metrics) {
  Json out = Json::object();
  out.set("cases", Json(metrics.cases()));
  out.set("value_errors", Json(metrics.value_errors()));
  out.set("stage_failures", Json(metrics.stage_failures()));
  out.set("error_rate", Json(metrics.error_rate()));
  out.set("stage_failure_rate", Json(metrics.stage_failure_rate()));
  out.set("mean_error", Json(metrics.mean_error()));
  out.set("mean_abs_error", Json(metrics.mean_abs_error()));
  out.set("mean_squared_error", Json(metrics.mean_squared_error()));
  out.set("worst_case_error", Json(metrics.worst_case_error()));
  return out;
}

Json to_json(const sim::MonteCarloReport& report) {
  Json out = Json::object();
  out.set("samples", Json(report.samples));
  out.set("seconds", Json(report.seconds));
  out.set("kernel", Json(std::string(sim::kernel_name(report.kernel))));
  out.set("lane_batches", Json(report.lane_batches));
  out.set("masked_lanes", Json(report.masked_lanes));
  out.set("metrics", to_json(report.metrics));
  out.set("stage_failure_ci", to_json(report.stage_failure_ci));
  out.set("value_error_ci", to_json(report.value_error_ci));
  if (!report.shard_timings.shards.empty()) {
    out.set("shard_timings", to_json(report.shard_timings));
  }
  return out;
}

Json to_json(const sim::ExhaustiveSimReport& report) {
  Json out = Json::object();
  out.set("seconds", Json(report.seconds));
  out.set("bit_operations", Json(report.bit_operations));
  out.set("kernel", Json(std::string(sim::kernel_name(report.kernel))));
  out.set("lane_batches", Json(report.lane_batches));
  out.set("masked_lanes", Json(report.masked_lanes));
  out.set("metrics", to_json(report.metrics));
  if (!report.shard_timings.shards.empty()) {
    out.set("shard_timings", to_json(report.shard_timings));
  }
  return out;
}

Json to_json(const engine::CacheStats& stats) {
  Json out = Json::object();
  out.set("hits", Json(stats.hits));
  out.set("misses", Json(stats.misses));
  out.set("hit_rate", Json(stats.hit_rate()));
  out.set("insertions", Json(stats.insertions));
  out.set("evictions", Json(stats.evictions));
  out.set("stages_computed", Json(stats.stages_computed));
  out.set("chains_evaluated", Json(stats.chains_evaluated));
  return out;
}

Json to_json(const engine::BatchStats& stats) {
  Json out = Json::object();
  out.set("batches", Json(stats.batches));
  out.set("lanes", Json(stats.lanes));
  out.set("max_lanes", Json(stats.max_lanes));
  out.set("lane_stages", Json(stats.lane_stages));
  out.set("fast_lane_stages", Json(stats.fast_lane_stages));
  return out;
}

Json to_json(const engine::Evaluation& evaluation) {
  Json out = Json::object();
  out.set("method", Json(std::string(engine::method_name(evaluation.method))));
  out.set("exact", Json(engine::method_info(evaluation.method).exact));
  out.set("p_error", Json(evaluation.p_error));
  out.set("p_success", Json(evaluation.p_success));
  out.set("work_items", Json(evaluation.work_items));
  if (!evaluation.stage_failure_ci.empty()) {
    out.set("stage_failure_ci", to_json(evaluation.stage_failure_ci));
  }
  if (evaluation.distribution) {
    const engine::DistributionStats& d = *evaluation.distribution;
    Json dist = Json::object();
    dist.set("error_rate", Json(d.error_rate));
    dist.set("mean_error", Json(d.mean_error));
    dist.set("mean_error_distance", Json(d.mean_error_distance));
    dist.set("mean_squared_error", Json(d.mean_squared_error));
    dist.set("worst_case_error", Json(d.worst_case_error));
    dist.set("psnr_db", Json(d.psnr_db));  // null when infinite (MSE == 0)
    out.set("distribution", std::move(dist));
  }
  if (evaluation.pmf) {
    const engine::PmfSummary& p = *evaluation.pmf;
    Json pmf = Json::object();
    pmf.set("support", Json(p.support));
    pmf.set("total_mass", Json(p.total_mass));
    pmf.set("entropy_bits", Json(p.entropy_bits));
    pmf.set("min_value", Json(p.min_value));
    pmf.set("max_value", Json(p.max_value));
    Json top = Json::array();
    for (const analysis::ErrorPmf::Entry& entry : p.top) {
      Json point = Json::object();
      point.set("value", Json(entry.value));
      point.set("probability", Json(entry.probability));
      top.push_back(std::move(point));
    }
    pmf.set("top", std::move(top));
    out.set("pmf", std::move(pmf));
  }
  return out;
}

Json to_json(const explore::SearchStats& stats) {
  Json out = Json::object();
  out.set("candidates_evaluated", Json(stats.candidates_evaluated));
  out.set("candidates_rejected", Json(stats.candidates_rejected));
  out.set("cache_hits", Json(stats.cache_hits));
  out.set("cache_misses", Json(stats.cache_misses));
  out.set("stages_computed", Json(stats.stages_computed));
  out.set("soa_batches", Json(stats.soa_batches));
  out.set("soa_lanes", Json(stats.soa_lanes));
  out.set("soa_max_lanes", Json(stats.soa_max_lanes));
  // Branch-and-bound accounting.  Emitted unconditionally — zero-valued
  // counters appear explicitly so report consumers can rely on the key
  // set being the full SearchStats regardless of which optimizer ran.
  out.set("nodes_expanded", Json(stats.nodes_expanded));
  out.set("nodes_pruned", Json(stats.nodes_pruned));
  out.set("bound_cutoffs", Json(stats.bound_cutoffs));
  out.set("steal_count", Json(stats.steal_count));
  return out;
}

Json to_json(const explore::HybridDesign& design) {
  Json out = Json::object();
  Json stages = Json::array();
  for (const adders::AdderCell& cell : design.stages) {
    stages.push_back(Json(cell.name()));
  }
  out.set("stages", std::move(stages));
  out.set("p_error", Json(design.p_error));
  out.set("p_success", Json(design.p_success));
  out.set("objective",
          Json(std::string(explore::objective_name(design.objective))));
  out.set("med", design.med ? Json(*design.med) : Json());
  out.set("mse", design.mse ? Json(*design.mse) : Json());
  out.set("wce", design.wce ? Json(*design.wce) : Json());
  out.set("power_nw",
          design.power_nw ? Json(*design.power_nw) : Json());
  out.set("area_ge", design.area_ge ? Json(*design.area_ge) : Json());
  out.set("search", to_json(design.stats));
  return out;
}

Json to_json(const explore::DesignPoint& point) {
  Json out = Json::object();
  out.set("name", Json(point.name));
  out.set("p_error", Json(point.p_error));
  out.set("power_nw", point.has_cost ? Json(point.power_nw) : Json());
  out.set("area_ge", point.has_cost ? Json(point.area_ge) : Json());
  return out;
}

Json to_json(const std::vector<explore::DesignPoint>& points) {
  Json out = Json::array();
  for (const explore::DesignPoint& point : points) {
    out.push_back(to_json(point));
  }
  return out;
}

Json to_json(const explore::ParetoStats& stats) {
  Json out = Json::object();
  out.set("points_in", Json(static_cast<std::uint64_t>(stats.points_in)));
  out.set("points_with_cost",
          Json(static_cast<std::uint64_t>(stats.points_with_cost)));
  out.set("front_size", Json(static_cast<std::uint64_t>(stats.front_size)));
  out.set("seconds", Json(stats.seconds));
  return out;
}

}  // namespace sealpaa::obs

// Hierarchical named counters and scoped timers for the observability
// layer.  Paths are '/'-separated ("sim/montecarlo/samples"); the JSON
// rendering nests one object per path segment, so related counters stay
// grouped in the report.  All mutation is thread-safe: engines running
// on the pool can bump counters from worker threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sealpaa/obs/json.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::obs {

class Counters {
 public:
  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Adds `n` to the integer counter at `path`.
  void add(const std::string& path, std::uint64_t n = 1);

  /// Keeps the maximum of the current value and `value` (high-water
  /// marks: queue depth, peak live scalars, ...).
  void note_max(const std::string& path, std::uint64_t value);

  /// Accumulates a floating-point quantity (seconds, probabilities).
  void add_real(const std::string& path, double value);

  [[nodiscard]] std::uint64_t value(const std::string& path) const;
  [[nodiscard]] double real_value(const std::string& path) const;

  void clear();

  /// Renders the counter tree: path segments become nested objects,
  /// sibling keys sorted lexicographically (std::map order).
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> integers_;
  std::map<std::string, double> reals_;
};

/// Measures wall and CPU seconds for a scope and accumulates them into
/// `counters` under `<path>/wall_seconds` and `<path>/cpu_seconds` when
/// the scope ends (or `stop()` is called early).
class ScopedTimer {
 public:
  ScopedTimer(Counters& counters, std::string path);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at destruction; idempotent.
  void stop();

 private:
  Counters& counters_;
  std::string path_;
  util::WallTimer wall_;
  double cpu_start_;
  bool stopped_ = false;
};

/// Process CPU seconds consumed so far (all threads), from std::clock.
[[nodiscard]] double process_cpu_seconds() noexcept;

}  // namespace sealpaa::obs

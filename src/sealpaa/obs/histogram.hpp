// Log2-bucketed latency histogram for the service's per-method timing
// stats.
//
// Buckets are powers of two of the recorded unit (the service records
// microseconds): bucket k counts samples in [2^k, 2^(k+1)), bucket 0
// additionally holds 0.  That gives ~1 bit of relative precision over
// the full uint64 range with a fixed 64-counter footprint — enough to
// answer "is p99 a millisecond or a second" without per-request
// allocation.  Not thread-safe: the dispatcher records from one thread
// after each batch completes.
#pragma once

#include <cstdint>
#include <array>

#include "sealpaa/obs/json.hpp"

namespace sealpaa::obs {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Smallest recorded-unit value `v` such that at least `quantile`
  /// (in [0, 1]) of the samples are <= the upper edge of v's bucket.
  /// Resolution is the bucket width (a factor of two); 0 when empty.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double quantile) const
      noexcept;

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const
      noexcept {
    return buckets_;
  }

  void clear() noexcept;

  /// Folds `other` into this histogram (bucket-wise addition; min/max/
  /// sum/count combine exactly).  The service aggregates per-shard
  /// histograms into the fleet-wide view with this.
  void merge(const Histogram& other) noexcept;

  /// {"count", "sum", "min", "max", "mean", "p50", "p99", "buckets":
  ///  [{"le": <upper edge>, "count": n}, ...]} — only non-empty buckets
  /// are listed, so quiet methods serialize compactly.
  [[nodiscard]] Json to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sealpaa::obs

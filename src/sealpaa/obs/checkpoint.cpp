#include "sealpaa/obs/checkpoint.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "sealpaa/obs/serialize.hpp"

namespace sealpaa::obs {

namespace {

constexpr std::string_view kSchema = "sealpaa.bnb-checkpoint";
constexpr std::uint64_t kVersion = 1;

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("bnb checkpoint: " + what);
}

const Json& require(const Json& object, const char* key) {
  const Json* value = object.find(key);
  if (value == nullptr) malformed(std::string("missing key '") + key + "'");
  return *value;
}

std::string score_bits_of(double score) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(score)));
  return std::string(buffer);
}

double score_from_bits(const std::string& bits) {
  if (bits.size() != 16) malformed("score_bits must be 16 hex digits");
  std::uint64_t value = 0;
  for (const char c : bits) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    else malformed("score_bits must be 16 hex digits");
  }
  return std::bit_cast<double>(value);
}

Json doubles_to_json(const std::vector<double>& values) {
  Json out = Json::array();
  for (const double v : values) out.push_back(Json(v));
  return out;
}

std::vector<double> doubles_from_json(const Json& array, const char* key) {
  if (!array.is_array()) malformed(std::string(key) + " must be an array");
  std::vector<double> out;
  out.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    out.push_back(array.at(i).number());
  }
  return out;
}

explore::SearchStats stats_from_json(const Json& object) {
  if (!object.is_object()) malformed("stats must be an object");
  explore::SearchStats stats;
  stats.candidates_evaluated =
      require(object, "candidates_evaluated").unsigned_integer();
  stats.candidates_rejected =
      require(object, "candidates_rejected").unsigned_integer();
  stats.cache_hits = require(object, "cache_hits").unsigned_integer();
  stats.cache_misses = require(object, "cache_misses").unsigned_integer();
  stats.stages_computed =
      require(object, "stages_computed").unsigned_integer();
  stats.soa_batches = require(object, "soa_batches").unsigned_integer();
  stats.soa_lanes = require(object, "soa_lanes").unsigned_integer();
  stats.soa_max_lanes = require(object, "soa_max_lanes").unsigned_integer();
  stats.nodes_expanded = require(object, "nodes_expanded").unsigned_integer();
  stats.nodes_pruned = require(object, "nodes_pruned").unsigned_integer();
  stats.bound_cutoffs = require(object, "bound_cutoffs").unsigned_integer();
  stats.steal_count = require(object, "steal_count").unsigned_integer();
  return stats;
}

}  // namespace

Json to_json(const explore::BnbCheckpoint& checkpoint) {
  Json doc = Json::object();
  doc.set("schema", Json(std::string(kSchema)));
  doc.set("version", Json(kVersion));
  doc.set("objective", Json(checkpoint.objective));
  doc.set("width", Json(static_cast<std::uint64_t>(checkpoint.width)));
  Json palette = Json::array();
  for (const std::uint16_t key : checkpoint.palette) {
    palette.push_back(Json(static_cast<std::uint64_t>(key)));
  }
  doc.set("palette", std::move(palette));
  Json profile = Json::object();
  profile.set("p_a", doubles_to_json(checkpoint.p_a));
  profile.set("p_b", doubles_to_json(checkpoint.p_b));
  profile.set("p_cin", Json(checkpoint.p_cin));
  doc.set("profile", std::move(profile));
  Json constraints = Json::object();
  constraints.set("max_power_nw", checkpoint.max_power_nw
                                      ? Json(*checkpoint.max_power_nw)
                                      : Json());
  constraints.set("max_area_ge", checkpoint.max_area_ge
                                     ? Json(*checkpoint.max_area_ge)
                                     : Json());
  doc.set("constraints", std::move(constraints));
  doc.set("split_depth",
          Json(static_cast<std::uint64_t>(checkpoint.split_depth)));
  doc.set("total_units", Json(checkpoint.total_units));
  if (checkpoint.incumbent_found) {
    Json incumbent = Json::object();
    Json choices = Json::array();
    for (const std::size_t c : checkpoint.incumbent_choices) {
      choices.push_back(Json(static_cast<std::uint64_t>(c)));
    }
    incumbent.set("choices", std::move(choices));
    incumbent.set("score", Json(checkpoint.incumbent_score));
    incumbent.set("score_bits", Json(score_bits_of(checkpoint.incumbent_score)));
    incumbent.set("index", Json(checkpoint.incumbent_index));
    doc.set("incumbent", std::move(incumbent));
  } else {
    doc.set("incumbent", Json());
  }
  Json completed = Json::array();
  for (const std::uint64_t u : checkpoint.completed_units) {
    completed.push_back(Json(u));
  }
  doc.set("completed_units", std::move(completed));
  doc.set("stats", to_json(checkpoint.stats));
  return doc;
}

explore::BnbCheckpoint parse_bnb_checkpoint(const Json& doc) {
  if (!doc.is_object()) malformed("document must be an object");
  if (require(doc, "schema").string_value() != kSchema) {
    malformed("wrong schema tag");
  }
  if (require(doc, "version").unsigned_integer() != kVersion) {
    malformed("unsupported version");
  }
  explore::BnbCheckpoint ckpt;
  ckpt.objective = require(doc, "objective").string_value();
  ckpt.width =
      static_cast<std::size_t>(require(doc, "width").unsigned_integer());
  const Json& palette = require(doc, "palette");
  if (!palette.is_array()) malformed("palette must be an array");
  ckpt.palette.reserve(palette.size());
  for (std::size_t i = 0; i < palette.size(); ++i) {
    const std::uint64_t key = palette.at(i).unsigned_integer();
    if (key > 0xffff) malformed("palette fingerprint out of range");
    ckpt.palette.push_back(static_cast<std::uint16_t>(key));
  }
  const Json& profile = require(doc, "profile");
  ckpt.p_a = doubles_from_json(require(profile, "p_a"), "p_a");
  ckpt.p_b = doubles_from_json(require(profile, "p_b"), "p_b");
  ckpt.p_cin = require(profile, "p_cin").number();
  const Json& constraints = require(doc, "constraints");
  const Json& power = require(constraints, "max_power_nw");
  if (!power.is_null()) ckpt.max_power_nw = power.number();
  const Json& area = require(constraints, "max_area_ge");
  if (!area.is_null()) ckpt.max_area_ge = area.number();
  ckpt.split_depth = static_cast<std::size_t>(
      require(doc, "split_depth").unsigned_integer());
  ckpt.total_units = require(doc, "total_units").unsigned_integer();
  const Json& incumbent = require(doc, "incumbent");
  if (!incumbent.is_null()) {
    if (!incumbent.is_object()) malformed("incumbent must be an object");
    ckpt.incumbent_found = true;
    const Json& choices = require(incumbent, "choices");
    if (!choices.is_array()) malformed("incumbent choices must be an array");
    ckpt.incumbent_choices.reserve(choices.size());
    for (std::size_t i = 0; i < choices.size(); ++i) {
      ckpt.incumbent_choices.push_back(
          static_cast<std::size_t>(choices.at(i).unsigned_integer()));
    }
    // score_bits is authoritative (exact IEEE-754 round trip); the
    // "score" double is informational.
    ckpt.incumbent_score =
        score_from_bits(require(incumbent, "score_bits").string_value());
    ckpt.incumbent_index = require(incumbent, "index").unsigned_integer();
  }
  const Json& completed = require(doc, "completed_units");
  if (!completed.is_array()) malformed("completed_units must be an array");
  ckpt.completed_units.reserve(completed.size());
  for (std::size_t i = 0; i < completed.size(); ++i) {
    ckpt.completed_units.push_back(completed.at(i).unsigned_integer());
  }
  ckpt.stats = stats_from_json(require(doc, "stats"));
  return ckpt;
}

void write_bnb_checkpoint(const std::string& path,
                          const explore::BnbCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("bnb checkpoint: cannot open " + tmp);
    }
    out << to_json(checkpoint).dump(2) << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("bnb checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("bnb checkpoint: rename to " + path + " failed");
  }
}

explore::BnbCheckpoint read_bnb_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("bnb checkpoint: cannot read " + path);
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_bnb_checkpoint(Json::parse(text));
}

}  // namespace sealpaa::obs

// Minimal JSON document builder for the observability layer.
//
// The library has no external JSON dependency, so this is a small,
// self-contained value tree that covers exactly what RunReport needs:
// null / bool / integer / double / string / array / object, with
// insertion-ordered object keys (reports diff cleanly run-to-run) and
// RFC 8259-conformant escaping.  Non-finite doubles serialize as null —
// JSON has no NaN, and a NaN leaking into a report is precisely the bug
// class the observability layer exists to surface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sealpaa::obs {

class Json {
 public:
  enum class Type { Null, Bool, Integer, Unsigned, Double, String, Array,
                    Object };

  Json() noexcept : type_(Type::Null) {}
  Json(bool value) noexcept : type_(Type::Bool), bool_(value) {}
  Json(std::int64_t value) noexcept : type_(Type::Integer), int_(value) {}
  Json(int value) noexcept : Json(static_cast<std::int64_t>(value)) {}
  Json(unsigned value) noexcept : Json(static_cast<std::uint64_t>(value)) {}
  Json(std::uint64_t value) noexcept : type_(Type::Unsigned), uint_(value) {}
  Json(double value) noexcept : type_(Type::Double), double_(value) {}
  Json(std::string value) : type_(Type::String), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  /// Appends to an array (the value must have been created via array()).
  Json& push_back(Json value);

  /// Inserts or replaces `key` in an object; insertion order is kept.
  Json& set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serializes the tree.  `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Escapes `raw` as a JSON string literal including the quotes.
  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sealpaa::obs

// Minimal JSON document builder *and parser* for the observability and
// service layers.
//
// The library has no external JSON dependency, so this is a small,
// self-contained value tree that covers exactly what RunReport needs:
// null / bool / integer / double / string / array / object, with
// insertion-ordered object keys (reports diff cleanly run-to-run) and
// RFC 8259-conformant escaping.  Non-finite doubles serialize as null —
// JSON has no NaN, and a NaN leaking into a report is precisely the bug
// class the observability layer exists to surface.
//
// `Json::parse` is the inverse: a strict recursive-descent RFC 8259
// reader used by the batch analysis service to decode request frames.
// It accepts exactly one document per call, keeps integers as integers
// (so request ids echo back bit-exactly), bounds nesting depth and
// rejects trailing garbage — malformed network input must fail loudly,
// never be guessed at.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sealpaa::obs {

class Json {
 public:
  enum class Type { Null, Bool, Integer, Unsigned, Double, String, Array,
                    Object };

  Json() noexcept : type_(Type::Null) {}
  Json(bool value) noexcept : type_(Type::Bool), bool_(value) {}
  Json(std::int64_t value) noexcept : type_(Type::Integer), int_(value) {}
  Json(int value) noexcept : Json(static_cast<std::int64_t>(value)) {}
  Json(unsigned value) noexcept : Json(static_cast<std::uint64_t>(value)) {}
  Json(std::uint64_t value) noexcept : type_(Type::Unsigned), uint_(value) {}
  Json(double value) noexcept : type_(Type::Double), double_(value) {}
  Json(std::string value) : type_(Type::String), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  /// Parses exactly one JSON document (leading/trailing whitespace
  /// allowed, anything else after the value is an error).  Throws
  /// std::invalid_argument with a byte offset on malformed input or
  /// nesting deeper than `max_depth` (stack-overflow guard for
  /// adversarial network frames).
  [[nodiscard]] static Json parse(std::string_view text,
                                  std::size_t max_depth = 64);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  /// Integer, Unsigned or Double.
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Integer || type_ == Type::Unsigned ||
           type_ == Type::Double;
  }

  // Checked readers for parsed documents.  Each throws std::invalid_argument
  // naming the actual type when the value cannot represent the request —
  // the service turns these into structured bad-request responses.
  [[nodiscard]] bool boolean() const;
  /// Integer value; accepts Unsigned values that fit std::int64_t.
  [[nodiscard]] std::int64_t integer() const;
  /// Non-negative integer; accepts Integer values >= 0.
  [[nodiscard]] std::uint64_t unsigned_integer() const;
  /// Numeric value as double (Integer / Unsigned / Double).
  [[nodiscard]] double number() const;
  [[nodiscard]] const std::string& string_value() const;
  /// Array element access with bounds checking.
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Ordered key/value pairs of an object (empty span otherwise).
  [[nodiscard]] std::span<const std::pair<std::string, Json>> items()
      const noexcept;

  /// Appends to an array (the value must have been created via array()).
  Json& push_back(Json value);

  /// Inserts or replaces `key` in an object; insertion order is kept.
  Json& set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serializes the tree.  `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Escapes `raw` as a JSON string literal including the quotes.
  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sealpaa::obs

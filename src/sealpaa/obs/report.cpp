#include "sealpaa/obs/report.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "sealpaa/util/parallel.hpp"

namespace sealpaa::obs {

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {
  generated_unix_ = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
}

void RunReport::record_args(const util::CliArgs& args) {
  args_ = Json::object();
  for (const auto& [name, value] : args.flags()) args_.set(name, Json(value));
  Json positional = Json::array();
  for (const std::string& arg : args.positional()) {
    positional.push_back(Json(arg));
  }
  args_.set("positional", std::move(positional));
}

Json& RunReport::section(const std::string& name) {
  Json* existing = const_cast<Json*>(sections_.find(name));
  if (existing != nullptr) return *existing;
  return sections_.set(name, Json::object());
}

Json RunReport::to_json() const {
  Json document = Json::object();
  document.set("schema", Json(std::string(kSchema)));
  document.set("schema_version", Json(kSchemaVersion));
  document.set("tool", Json(tool_));
  document.set("generated_unix", Json(generated_unix_));
  document.set("hardware_threads", Json(util::hardware_threads()));
  document.set("args", args_);
  document.set("counters", counters_.to_json());
  document.set("sections", sections_);
  return document;
}

void RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RunReport: cannot open '" + path +
                             "' for writing");
  }
  out << to_json().dump(2) << "\n";
  if (!out) {
    throw std::runtime_error("RunReport: write to '" + path + "' failed");
  }
}

std::optional<std::string> report_path(const util::CliArgs& args,
                                       const std::string& default_path) {
  if (args.has(RunReport::kFlag)) {
    const std::string path = args.get(RunReport::kFlag, "");
    if (path.empty() || path == "true") {
      throw std::invalid_argument(
          "--json-report requires a file path: --json-report=FILE");
    }
    return path;
  }
  if (args.get_bool("no-json", false) || default_path.empty()) {
    return std::nullopt;
  }
  return default_path;
}

}  // namespace sealpaa::obs

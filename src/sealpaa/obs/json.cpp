#include "sealpaa/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sealpaa::obs {

Json Json::array() {
  Json value;
  value.type_ = Type::Array;
  return value;
}

Json Json::object() {
  Json value;
  value.type_ = Type::Object;
  return value;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::Array) {
    throw std::logic_error("Json::push_back: value is not an array");
  }
  array_.push_back(std::move(value));
  return array_.back();
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::Object) {
    throw std::logic_error("Json::set: value is not an object");
  }
  for (auto& [existing_key, existing_value] : object_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return existing_value;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [existing_key, value] : object_) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

std::size_t Json::size() const noexcept {
  switch (type_) {
    case Type::Array:
      return array_.size();
    case Type::Object:
      return object_.size();
    default:
      return 0;
  }
}

std::string Json::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string double_literal(double value) {
  // Non-finite values have no JSON representation; emit null so a NaN in
  // a metric is visible in the report instead of corrupting it.
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      return;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Type::Integer:
      out += std::to_string(int_);
      return;
    case Type::Unsigned:
      out += std::to_string(uint_);
      return;
    case Type::Double:
      out += double_literal(double_);
      return;
    case Type::String:
      out += escape(string_);
      return;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        out += escape(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sealpaa::obs

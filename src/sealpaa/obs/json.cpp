#include "sealpaa/obs/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sealpaa::obs {

Json Json::array() {
  Json value;
  value.type_ = Type::Array;
  return value;
}

Json Json::object() {
  Json value;
  value.type_ = Type::Object;
  return value;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::Array) {
    throw std::logic_error("Json::push_back: value is not an array");
  }
  array_.push_back(std::move(value));
  return array_.back();
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::Object) {
    throw std::logic_error("Json::set: value is not an object");
  }
  for (auto& [existing_key, existing_value] : object_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return existing_value;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [existing_key, value] : object_) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

namespace {

[[nodiscard]] const char* type_label(Json::Type type) noexcept {
  switch (type) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Integer: return "integer";
    case Json::Type::Unsigned: return "unsigned";
    case Json::Type::Double: return "double";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

[[noreturn]] void wrong_type(const char* want, Json::Type got) {
  throw std::invalid_argument(std::string("Json: expected ") + want +
                              ", got " + type_label(got));
}

}  // namespace

bool Json::boolean() const {
  if (type_ != Type::Bool) wrong_type("bool", type_);
  return bool_;
}

std::int64_t Json::integer() const {
  if (type_ == Type::Integer) return int_;
  if (type_ == Type::Unsigned) {
    if (uint_ > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      throw std::invalid_argument("Json: unsigned value overflows int64");
    }
    return static_cast<std::int64_t>(uint_);
  }
  wrong_type("integer", type_);
}

std::uint64_t Json::unsigned_integer() const {
  if (type_ == Type::Unsigned) return uint_;
  if (type_ == Type::Integer) {
    if (int_ < 0) {
      throw std::invalid_argument("Json: negative value for unsigned field");
    }
    return static_cast<std::uint64_t>(int_);
  }
  wrong_type("unsigned integer", type_);
}

double Json::number() const {
  switch (type_) {
    case Type::Integer: return static_cast<double>(int_);
    case Type::Unsigned: return static_cast<double>(uint_);
    case Type::Double: return double_;
    default: wrong_type("number", type_);
  }
}

const std::string& Json::string_value() const {
  if (type_ != Type::String) wrong_type("string", type_);
  return string_;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array) wrong_type("array", type_);
  if (index >= array_.size()) {
    throw std::out_of_range("Json::at: index " + std::to_string(index) +
                            " out of range (size " +
                            std::to_string(array_.size()) + ")");
  }
  return array_[index];
}

std::span<const std::pair<std::string, Json>> Json::items() const noexcept {
  if (type_ != Type::Object) return {};
  return object_;
}

std::size_t Json::size() const noexcept {
  switch (type_) {
    case Type::Array:
      return array_.size();
    case Type::Object:
      return object_.size();
    default:
      return 0;
  }
}

std::string Json::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string double_literal(double value) {
  // Non-finite values have no JSON representation; emit null so a NaN in
  // a metric is visible in the report instead of corrupting it.
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      return;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Type::Integer:
      out += std::to_string(int_);
      return;
    case Type::Unsigned:
      out += std::to_string(uint_);
      return;
    case Type::Double:
      out += double_literal(double_);
      return;
    case Type::String:
      out += escape(string_);
      return;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        out += escape(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

// Strict RFC 8259 recursive-descent reader.  Offsets in diagnostics are
// byte positions into the input, so a service log line pinpoints exactly
// where a client's frame went wrong.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json run() {
    skip_whitespace();
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at byte " +
                                std::to_string(pos_));
  }

  [[nodiscard]] bool done() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() noexcept {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (done() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting exceeds max depth");
    if (done()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    Json out = Json::object();
    skip_whitespace();
    if (!done() && peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_whitespace();
      if (done() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      if (out.find(key) != nullptr) fail("duplicate object key \"" + key + '"');
      out.set(key, parse_value(depth + 1));
      skip_whitespace();
      if (done()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    Json out = Json::array();
    skip_whitespace();
    if (!done() && peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_whitespace();
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (done()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  void append_utf8(std::string& out, std::uint32_t code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) fail("truncated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: require the low half to follow.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          pos_ -= 1;
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    if (done() || peek() < '0' || peek() > '9') fail("invalid number");
    const std::size_t integer_start = pos_;
    while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ - integer_start > 1 && text_[integer_start] == '0') {
      pos_ = integer_start;
      fail("leading zeros are not allowed");
    }
    bool is_integer = true;
    if (!done() && peek() == '.') {
      is_integer = false;
      ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("invalid fraction");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      is_integer = false;
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      if (done() || peek() < '0' || peek() > '9') fail("invalid exponent");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_integer) {
      // Keep the native integer type so ids and counters round-trip
      // bit-exactly: non-negative → Unsigned, negative → Integer.
      if (token.front() == '-') {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(value);
        }
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(value);
        }
      }
      // Fall through to double for magnitudes beyond 64 bits.
    }
    errno = 0;
    char* end = nullptr;
    const std::string copy(token);  // strtod needs a terminated buffer
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || errno == ERANGE ||
        !std::isfinite(value)) {
      pos_ = start;
      fail("number out of range");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace sealpaa::obs

#include "sealpaa/prob/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sealpaa::prob {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  if (successes > trials) {
    throw std::invalid_argument(
        "wilson_interval: successes exceed trials");
  }
  if (trials == 0) return Interval::empty_interval();
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

double binomial_stderr(double p_hat, std::uint64_t trials) {
  if (trials == 0) return 1.0;
  return std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(trials));
}

}  // namespace sealpaa::prob

// A validated probability value type.
//
// The whole analysis manipulates probabilities; using a strong type with
// range validation at construction catches sign/complement mistakes at
// the API boundary while compiling down to a bare double in Release.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

namespace sealpaa::prob {

/// A probability in [0, 1].  Construction from a raw double validates the
/// range (throwing std::domain_error), so downstream arithmetic can rely
/// on the invariant.  Interior arithmetic that is provably range-safe
/// uses `Probability::unchecked` to avoid per-op validation.
class Probability {
 public:
  /// Default is probability zero.
  constexpr Probability() noexcept = default;

  /// Validating constructor; values outside [0,1] by more than `kSlack`
  /// (tolerance for accumulated rounding) throw std::domain_error.
  /// Values inside the slack band are clamped.
  explicit Probability(double value) : value_(validate(value)) {}

  /// Constructs without validation.  Caller guarantees value in [0,1].
  [[nodiscard]] static constexpr Probability unchecked(double value) noexcept {
    Probability p;
    p.value_ = value;
    return p;
  }

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  /// Complement 1 - p.
  [[nodiscard]] constexpr Probability complement() const noexcept {
    return unchecked(1.0 - value_);
  }

  /// Product of independent-event probabilities (always stays in range).
  [[nodiscard]] constexpr Probability operator*(Probability other) const noexcept {
    return unchecked(value_ * other.value_);
  }

  friend constexpr bool operator==(Probability a, Probability b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator<(Probability a, Probability b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(Probability a, Probability b) noexcept {
    return a.value_ <= b.value_;
  }

  /// Half / fair-coin probability.
  [[nodiscard]] static constexpr Probability half() noexcept {
    return unchecked(0.5);
  }
  [[nodiscard]] static constexpr Probability zero() noexcept {
    return unchecked(0.0);
  }
  [[nodiscard]] static constexpr Probability one() noexcept {
    return unchecked(1.0);
  }

 private:
  static double validate(double value);

  double value_ = 0.0;
};

/// Tolerance band outside [0,1] that is clamped instead of rejected;
/// compensates for accumulated floating-point rounding in long chains.
inline constexpr double kProbabilitySlack = 1.0e-9;

/// Throws std::domain_error with a contextual message when `value` is not
/// a probability (beyond the slack band); otherwise returns it clamped.
[[nodiscard]] double require_probability(double value, const std::string& what);

}  // namespace sealpaa::prob

#include "sealpaa/prob/rng.hpp"

namespace sealpaa::prob {

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 mix(seed);
  for (auto& word : state_) word = mix.next();
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> accumulator{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < state_.size(); ++i) {
          accumulator[i] ^= state_[i];
        }
      }
      next();
    }
  }
  state_ = accumulator;
}

}  // namespace sealpaa::prob

// Deterministic pseudo-random generation for the Monte Carlo engines.
//
// Xoshiro256** seeded via SplitMix64: fast, high quality, and fully
// reproducible across platforms (unlike std::mt19937 distributions whose
// outputs are implementation-defined for std::uniform_real_distribution).
#pragma once

#include <array>
#include <cstdint>

namespace sealpaa::prob {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna.  Satisfies (most of) the
/// UniformRandomBitGenerator requirements.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x5ea19aa5eed2017ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability `p`.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Jump function: advances 2^128 steps, for independent parallel streams.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sealpaa::prob

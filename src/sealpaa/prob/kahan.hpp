// Compensated (Kahan-Neumaier) summation.
//
// The recursion itself is numerically benign, but exhaustive weighted
// enumeration sums up to 2^(2N+1) tiny products; compensation keeps the
// exact-ground-truth engines honest to the last ulp.
#pragma once

#include <cmath>

namespace sealpaa::prob {

/// Neumaier variant of Kahan summation: accurate even when the addend is
/// larger than the running sum.
class KahanSum {
 public:
  constexpr KahanSum() noexcept = default;

  constexpr void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  constexpr KahanSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  [[nodiscard]] constexpr double value() const noexcept {
    return sum_ + compensation_;
  }

  constexpr void reset() noexcept {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace sealpaa::prob

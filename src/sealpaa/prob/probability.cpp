#include "sealpaa/prob/probability.hpp"

#include <algorithm>
#include <cmath>

namespace sealpaa::prob {

double require_probability(double value, const std::string& what) {
  if (std::isnan(value) || value < -kProbabilitySlack ||
      value > 1.0 + kProbabilitySlack) {
    throw std::domain_error(what + ": value " + std::to_string(value) +
                            " is not a probability in [0, 1]");
  }
  return std::clamp(value, 0.0, 1.0);
}

double Probability::validate(double value) {
  return require_probability(value, "Probability");
}

}  // namespace sealpaa::prob

// Streaming statistics and binomial confidence intervals used to validate
// Monte Carlo estimates against the analytical method (Tables 6 and 7).
#pragma once

#include <cstdint>

namespace sealpaa::prob {

/// Welford's online algorithm for mean and (sample) variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [low, high].  The *empty* interval
/// (low > high) is the explicit "no data" value: it contains nothing and
/// is what zero-trial estimates report instead of NaN or a fake [0, 1].
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool contains(double x) const noexcept {
    return low <= x && x <= high;
  }
  [[nodiscard]] double width() const noexcept { return high - low; }
  [[nodiscard]] bool empty() const noexcept { return low > high; }
  [[nodiscard]] static Interval empty_interval() noexcept {
    return {1.0, 0.0};
  }
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at normal quantile `z` (1.96 for ~95%, 3.29 for ~99.9%).
/// `trials == 0` yields the empty interval (no division by zero, no NaN);
/// `successes > trials` throws std::invalid_argument.
[[nodiscard]] Interval wilson_interval(std::uint64_t successes,
                                       std::uint64_t trials, double z);

/// Standard error of a binomial proportion estimate p̂ over n trials.
[[nodiscard]] double binomial_stderr(double p_hat, std::uint64_t trials);

}  // namespace sealpaa::prob

#include "sealpaa/explore/branch_bound.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/incremental.hpp"
#include "sealpaa/explore/detail.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::explore {

namespace {

// Relative slack widening the admissible bounds before a cutoff: the
// carry mass and the residual-error sum are monotone in exact
// arithmetic, but each is a different floating-point summation than the
// leaf score it bounds, so a mathematically-tied completion could land
// epsilon past the computed bound.  Pruning only beyond the slack keeps
// every tie explored, which is what makes the (score, min index)
// incumbent bit-identical to the exhaustive DFS.
constexpr double kErrBoundSlack = 1e-12;
constexpr double kPmfBoundSlack = 1e-9;

constexpr std::uint64_t kSatMax = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  return a > kSatMax - b ? kSatMax : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return a > kSatMax / b ? kSatMax : a * b;
}

/// (score, historical index) incumbent order — "better score, or equal
/// score and lower index", exactly the exhaustive DFS rule.  A total
/// order, so folding candidates in any schedule yields the same winner.
bool improves(bool found, double best_score, std::uint64_t best_index,
              double score, std::uint64_t index, bool maximize) noexcept {
  if (!found) return true;
  if (score != best_score) {
    return maximize ? score > best_score : score < best_score;
  }
  return index < best_index;
}

/// Admissible lower bound on the final MED/MSE from a depth-`depth`
/// prefix PMF state: every future error contribution (stage deltas for
/// i >= depth and the carry-out fold) is a multiple of 2^depth, so each
/// unit of prefix mass at value e ends at values congruent to e
/// (mod 2^depth) and contributes at least min(r, 2^depth - r)^q.
double residual_bound(const analysis::ErrorPmfState& state, std::size_t depth,
                      Objective objective) {
  if (depth == 0) return 0.0;
  // 2^62 still divides 2^d for d > 62, so clamping keeps the congruence
  // (and the bound admissible) while staying representable.  In practice
  // advance_error_pmf throws past 62 stages anyway.
  if (depth > 62) depth = 62;
  const std::int64_t mod = std::int64_t{1} << depth;
  const bool mse = objective == Objective::kMse;
  double bound = 0.0;
  for (const analysis::ErrorPmf& segment : state.joint) {
    for (const analysis::ErrorPmf::Entry& entry : segment.entries()) {
      std::int64_t r = entry.value % mod;
      if (r < 0) r += mod;
      const double dist = static_cast<double>(std::min(r, mod - r));
      bound += entry.probability * (mse ? dist * dist : dist);
    }
  }
  return bound;
}

/// Immutable per-run context shared by every worker.
struct Ctx {
  Ctx(const multibit::InputProfile& profile_in,
      std::span<const adders::AdderCell> candidates_in,
      const DesignConstraints& constraints_in, Objective objective_in)
      : profile(profile_in),
        candidates(candidates_in),
        constraints(constraints_in),
        objective(objective_in) {}

  const multibit::InputProfile& profile;
  std::span<const adders::AdderCell> candidates;
  const DesignConstraints& constraints;
  Objective objective = Objective::kErrorRate;
  bool maximize = true;  // err maximizes success; med/mse minimize
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t split_depth = 0;
  std::uint64_t units = 0;
  bool track_power = false;
  bool track_area = false;
  std::vector<char> cell_usable;
  std::vector<double> power_of;
  std::vector<double> area_of;
  /// Saturating k^i for the historical (stage-0 least significant)
  /// design index; pow_k[i] for i in [0, n].
  std::vector<std::uint64_t> pow_k;
  /// Saturating k^(n - d): leaves below a depth-d node; [0, n].
  std::vector<std::uint64_t> leaves_below;
};

Ctx make_ctx(const multibit::InputProfile& profile,
             std::span<const adders::AdderCell> candidates,
             const DesignConstraints& constraints, Objective objective) {
  Ctx ctx{profile, candidates, constraints, objective};
  ctx.maximize = objective == Objective::kErrorRate;
  ctx.n = profile.width();
  ctx.k = candidates.size();
  ctx.track_power = constraints.max_power_nw.has_value();
  ctx.track_area = constraints.max_area_ge.has_value();
  ctx.cell_usable.reserve(ctx.k);
  ctx.power_of.reserve(ctx.k);
  ctx.area_of.reserve(ctx.k);
  for (const adders::AdderCell& cell : candidates) {
    const detail::CellCost cost = detail::cost_of(cell);
    const bool ok = detail::usable(cost, constraints);
    ctx.cell_usable.push_back(ok ? 1 : 0);
    ctx.power_of.push_back(ok && cost.power ? *cost.power : 0.0);
    ctx.area_of.push_back(ok && cost.area ? *cost.area : 0.0);
  }
  ctx.pow_k.resize(ctx.n + 1);
  ctx.leaves_below.resize(ctx.n + 1);
  ctx.pow_k[0] = 1;
  for (std::size_t i = 0; i < ctx.n; ++i) {
    ctx.pow_k[i + 1] = sat_mul(ctx.pow_k[i], ctx.k);
  }
  for (std::size_t d = 0; d <= ctx.n; ++d) {
    ctx.leaves_below[d] = ctx.pow_k[ctx.n - d];
  }
  // Static unit split: the smallest depth giving at least 64 subtree
  // units.  A function of (k, n) only — never of the thread count — so
  // the unit list, and with it the single-threaded visit order and every
  // checkpoint, is the same however many workers run.
  std::size_t depth = 0;
  std::uint64_t units = 1;
  while (units < 64 && depth + 1 < ctx.n) {
    units = sat_mul(units, ctx.k);
    ++depth;
  }
  ctx.split_depth = depth;
  ctx.units = units;
  return ctx;
}

/// Additive merge of per-unit accounting (soa_max_lanes merges as max,
/// nodes_pruned and candidates_rejected saturate).
void merge_stats(SearchStats& into, const SearchStats& from) noexcept {
  into.candidates_evaluated += from.candidates_evaluated;
  into.candidates_rejected =
      sat_add(into.candidates_rejected, from.candidates_rejected);
  into.cache_hits += from.cache_hits;
  into.cache_misses += from.cache_misses;
  into.stages_computed += from.stages_computed;
  into.soa_batches += from.soa_batches;
  into.soa_lanes += from.soa_lanes;
  into.soa_max_lanes = std::max(into.soa_max_lanes, from.soa_max_lanes);
  into.nodes_expanded += from.nodes_expanded;
  into.nodes_pruned = sat_add(into.nodes_pruned, from.nodes_pruned);
  into.bound_cutoffs += from.bound_cutoffs;
  into.steal_count += from.steal_count;
}

struct Incumbent {
  bool found = false;
  double score = 0.0;
  std::uint64_t index = 0;
  std::vector<std::size_t> choices;
};

/// Contiguous range of unit indices owned by one worker.
struct UnitRange {
  std::uint64_t next = 0;
  std::uint64_t end = 0;
};

/// Mutable run state shared by the workers.  One mutex guards all of it:
/// every access happens at unit granularity (claim / steal / publish /
/// complete), which is orders of magnitude coarser than the per-node
/// work, so contention is negligible.
struct Shared {
  std::mutex mutex;
  Incumbent incumbent;
  std::vector<char> unit_done;
  std::vector<UnitRange> ranges;
  std::uint64_t units_completed = 0;
  std::uint64_t units_since_checkpoint = 0;
  SearchStats stats;
  bool suspended = false;
  std::exception_ptr error;
};

BnbCheckpoint build_checkpoint_locked(const Ctx& ctx, const Shared& shared) {
  BnbCheckpoint ckpt;
  ckpt.objective = std::string(objective_name(ctx.objective));
  ckpt.width = ctx.n;
  ckpt.palette.reserve(ctx.k);
  for (const adders::AdderCell& cell : ctx.candidates) {
    ckpt.palette.push_back(engine::MklCache::key_of(cell));
  }
  ckpt.p_a = ctx.profile.all_p_a();
  ckpt.p_b = ctx.profile.all_p_b();
  ckpt.p_cin = ctx.profile.p_cin();
  ckpt.max_power_nw = ctx.constraints.max_power_nw;
  ckpt.max_area_ge = ctx.constraints.max_area_ge;
  ckpt.split_depth = ctx.split_depth;
  ckpt.total_units = ctx.units;
  ckpt.incumbent_found = shared.incumbent.found;
  ckpt.incumbent_choices = shared.incumbent.choices;
  ckpt.incumbent_score = shared.incumbent.score;
  ckpt.incumbent_index = shared.incumbent.index;
  for (std::uint64_t u = 0; u < ctx.units; ++u) {
    if (shared.unit_done[u]) ckpt.completed_units.push_back(u);
  }
  ckpt.stats = shared.stats;
  return ckpt;
}

void validate_checkpoint(const Ctx& ctx, const BnbCheckpoint& ckpt) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(
        std::string("BranchBoundOptimizer::resume: checkpoint mismatch: ") +
        what);
  };
  if (ckpt.objective != objective_name(ctx.objective)) fail("objective");
  if (ckpt.width != ctx.n) fail("width");
  if (ckpt.palette.size() != ctx.k) fail("palette size");
  for (std::size_t c = 0; c < ctx.k; ++c) {
    if (ckpt.palette[c] != engine::MklCache::key_of(ctx.candidates[c])) {
      fail("palette cell");
    }
  }
  if (ckpt.p_a != ctx.profile.all_p_a() ||
      ckpt.p_b != ctx.profile.all_p_b() ||
      ckpt.p_cin != ctx.profile.p_cin()) {
    fail("input profile");
  }
  if (ckpt.max_power_nw != ctx.constraints.max_power_nw ||
      ckpt.max_area_ge != ctx.constraints.max_area_ge) {
    fail("constraints");
  }
  if (ckpt.split_depth != ctx.split_depth ||
      ckpt.total_units != ctx.units) {
    fail("unit split");
  }
  if (ckpt.incumbent_found &&
      ckpt.incumbent_choices.size() != ctx.n) {
    fail("incumbent choices");
  }
  for (const std::size_t c : ckpt.incumbent_choices) {
    if (c >= ctx.k) fail("incumbent choice index");
  }
  for (const std::uint64_t u : ckpt.completed_units) {
    if (u >= ctx.units) fail("completed unit index");
  }
}

/// One worker: owns a ChainEvaluator (not thread-safe) and drains units
/// from its range, stealing when empty.
class Worker {
 public:
  Worker(const Ctx& ctx, Shared& shared, const BnbOptions& options,
         std::size_t id)
      : ctx_(ctx),
        shared_(shared),
        options_(options),
        id_(id),
        eval_(ctx.profile,
              std::vector<adders::AdderCell>(ctx.candidates.begin(),
                                             ctx.candidates.end())),
        parent_scratch_(1) {
    choices_.reserve(ctx.n);
  }

  void run() {
    for (;;) {
      const std::optional<std::uint64_t> unit = claim();
      if (!unit) return;
      process_unit(*unit);
    }
  }

 private:
  /// Claims the next unit: own range first (ascending order — at one
  /// worker this is a pure sequential sweep over all units), then steals
  /// the upper half of the largest remaining victim range.
  std::optional<std::uint64_t> claim() {
    std::lock_guard<std::mutex> lock(shared_.mutex);
    if (shared_.suspended) return std::nullopt;
    for (;;) {
      UnitRange& own = shared_.ranges[id_];
      while (own.next < own.end) {
        const std::uint64_t u = own.next++;
        if (!shared_.unit_done[u]) return u;  // resume skips done units
      }
      std::size_t victim = shared_.ranges.size();
      std::uint64_t best_remaining = 0;
      for (std::size_t v = 0; v < shared_.ranges.size(); ++v) {
        if (v == id_) continue;
        const UnitRange& range = shared_.ranges[v];
        const std::uint64_t remaining = range.end - range.next;
        if (remaining > best_remaining) {
          best_remaining = remaining;
          victim = v;
        }
      }
      if (victim == shared_.ranges.size()) return std::nullopt;  // drained
      UnitRange& from = shared_.ranges[victim];
      ++shared_.stats.steal_count;
      if (best_remaining == 1) {
        const std::uint64_t u = from.next++;
        if (!shared_.unit_done[u]) return u;
        continue;
      }
      // Victim keeps the lower (earlier) half it is already walking.
      const std::uint64_t mid = from.next + (best_remaining + 1) / 2;
      own.next = mid;
      own.end = from.end;
      from.end = mid;
    }
  }

  void process_unit(std::uint64_t unit) {
    unit_stats_ = SearchStats{};
    {
      std::lock_guard<std::mutex> lock(shared_.mutex);
      refresh_incumbent_locked();
    }
    choices_.clear();
    std::uint64_t rest = unit;
    for (std::size_t i = 0; i < ctx_.split_depth; ++i) {
      choices_.push_back(static_cast<std::size_t>(rest % ctx_.k));
      rest /= ctx_.k;
    }
    // Constraint screen over the fixed prefix, left to right — the same
    // running-sum order as the exhaustive odometer, so the rejected leaf
    // set is bit-identical.
    double power = 0.0;
    double area = 0.0;
    bool rejected = false;
    for (std::size_t i = 0; i < ctx_.split_depth && !rejected; ++i) {
      const std::size_t c = choices_[i];
      if (!ctx_.cell_usable[c]) {
        rejected = true;
        break;
      }
      if (ctx_.track_power) {
        power += ctx_.power_of[c];
        if (power > *ctx_.constraints.max_power_nw) rejected = true;
      }
      if (!rejected && ctx_.track_area) {
        area += ctx_.area_of[c];
        if (area > *ctx_.constraints.max_area_ge) rejected = true;
      }
    }
    if (rejected) {
      unit_stats_.candidates_rejected =
          sat_add(unit_stats_.candidates_rejected,
                  ctx_.leaves_below[ctx_.split_depth]);
    } else {
      const engine::CacheStats cache_before = objective_cache_stats();
      const engine::BatchStats batch_before = eval_.batch_stats();
      dfs(unit, power, area);
      const engine::CacheStats& cache_after = objective_cache_stats();
      const engine::BatchStats& batch_after = eval_.batch_stats();
      unit_stats_.cache_hits += cache_after.hits - cache_before.hits;
      unit_stats_.cache_misses += cache_after.misses - cache_before.misses;
      unit_stats_.stages_computed +=
          cache_after.stages_computed - cache_before.stages_computed;
      unit_stats_.soa_batches += batch_after.batches - batch_before.batches;
      unit_stats_.soa_lanes += batch_after.lanes - batch_before.lanes;
      unit_stats_.soa_max_lanes =
          std::max(unit_stats_.soa_max_lanes, batch_after.max_lanes);
    }
    complete_unit(unit);
  }

  [[nodiscard]] const engine::CacheStats& objective_cache_stats() const {
    return ctx_.maximize ? eval_.stats() : eval_.pmf_stats();
  }

  void refresh_incumbent_locked() {
    inc_found_ = shared_.incumbent.found;
    inc_score_ = shared_.incumbent.score;
    inc_index_ = shared_.incumbent.index;
  }

  [[nodiscard]] bool prunable(double bound) const noexcept {
    if (!inc_found_) return false;
    if (ctx_.maximize) {
      return bound * (1.0 + kErrBoundSlack) < inc_score_;
    }
    return bound * (1.0 - kPmfBoundSlack) > inc_score_;
  }

  void dfs(std::uint64_t prefix_index, double power, double area) {
    const std::size_t d = choices_.size();
    if (inc_found_) {
      const double bound =
          ctx_.maximize
              ? eval_.carry_after(choices_).success_mass()
              : residual_bound(*eval_.pmf_state_after(choices_), d,
                               ctx_.objective);
      if (prunable(bound)) {
        ++unit_stats_.bound_cutoffs;
        unit_stats_.nodes_pruned =
            sat_add(unit_stats_.nodes_pruned, ctx_.leaves_below[d]);
        return;
      }
    }
    ++unit_stats_.nodes_expanded;
    if (d + 1 == ctx_.n) {
      score_leaves(prefix_index, power, area);
      return;
    }
    for (std::size_t c = 0; c < ctx_.k; ++c) {
      if (!ctx_.cell_usable[c]) {
        unit_stats_.candidates_rejected = sat_add(
            unit_stats_.candidates_rejected, ctx_.leaves_below[d + 1]);
        continue;
      }
      double next_power = power;
      double next_area = area;
      if (ctx_.track_power) {
        next_power += ctx_.power_of[c];
        if (next_power > *ctx_.constraints.max_power_nw) {
          unit_stats_.candidates_rejected = sat_add(
              unit_stats_.candidates_rejected, ctx_.leaves_below[d + 1]);
          continue;
        }
      }
      if (ctx_.track_area) {
        next_area += ctx_.area_of[c];
        if (next_area > *ctx_.constraints.max_area_ge) {
          unit_stats_.candidates_rejected = sat_add(
              unit_stats_.candidates_rejected, ctx_.leaves_below[d + 1]);
          continue;
        }
      }
      choices_.push_back(c);
      dfs(sat_add(prefix_index, sat_mul(c, ctx_.pow_k[d])), next_power,
          next_area);
      choices_.pop_back();
    }
  }

  /// Scores all surviving extensions of the depth-(n-1) prefix.  The err
  /// objective scores them in one score_extensions SoA batch (lane-
  /// parallel, bit-identical to per-extension final_success); the PMF
  /// objectives finalize each candidate's prefix PMF.
  void score_leaves(std::uint64_t prefix_index, double power, double area) {
    const std::size_t d = choices_.size();
    pending_.clear();
    pending_choice_.clear();
    for (std::size_t c = 0; c < ctx_.k; ++c) {
      if (!ctx_.cell_usable[c]) {
        ++unit_stats_.candidates_rejected;
        continue;
      }
      if (ctx_.track_power &&
          power + ctx_.power_of[c] > *ctx_.constraints.max_power_nw) {
        ++unit_stats_.candidates_rejected;
        continue;
      }
      if (ctx_.track_area &&
          area + ctx_.area_of[c] > *ctx_.constraints.max_area_ge) {
        ++unit_stats_.candidates_rejected;
        continue;
      }
      if (ctx_.maximize) {
        pending_.push_back(engine::ChainEvaluator::Extension{
            0, static_cast<std::uint8_t>(c)});
        pending_choice_.push_back(c);
      } else {
        choices_.push_back(c);
        const double metric =
            detail::pmf_metric(eval_.error_pmf(choices_), ctx_.objective);
        choices_.pop_back();
        ++unit_stats_.candidates_evaluated;
        consider(metric,
                 sat_add(prefix_index, sat_mul(c, ctx_.pow_k[d])), c);
      }
    }
    if (ctx_.maximize && !pending_.empty()) {
      unit_stats_.candidates_evaluated += pending_.size();
      parent_scratch_[0] = choices_;
      const std::vector<double> scores =
          eval_.score_extensions(parent_scratch_, pending_);
      for (std::size_t e = 0; e < pending_.size(); ++e) {
        consider(scores[e],
                 sat_add(prefix_index,
                         sat_mul(pending_choice_[e], ctx_.pow_k[d])),
                 pending_choice_[e]);
      }
    }
  }

  void consider(double score, std::uint64_t index, std::size_t last_choice) {
    if (!improves(inc_found_, inc_score_, inc_index_, score, index,
                  ctx_.maximize)) {
      return;
    }
    std::lock_guard<std::mutex> lock(shared_.mutex);
    Incumbent& best = shared_.incumbent;
    if (improves(best.found, best.score, best.index, score, index,
                 ctx_.maximize)) {
      best.found = true;
      best.score = score;
      best.index = index;
      best.choices = choices_;
      best.choices.push_back(last_choice);
    }
    refresh_incumbent_locked();
  }

  void complete_unit(std::uint64_t unit) {
    std::lock_guard<std::mutex> lock(shared_.mutex);
    shared_.unit_done[unit] = 1;
    ++shared_.units_completed;
    merge_stats(shared_.stats, unit_stats_);
    if (options_.suspend_after_units != 0 && !shared_.suspended &&
        shared_.units_completed >= options_.suspend_after_units) {
      shared_.suspended = true;
    }
    if (options_.checkpoint_every_units != 0 && options_.checkpoint_sink &&
        ++shared_.units_since_checkpoint >= options_.checkpoint_every_units) {
      shared_.units_since_checkpoint = 0;
      options_.checkpoint_sink(build_checkpoint_locked(ctx_, shared_));
    }
  }

  const Ctx& ctx_;
  Shared& shared_;
  const BnbOptions& options_;
  std::size_t id_;
  engine::ChainEvaluator eval_;
  // Live local view of the incumbent (score/index only) used for
  // pruning; refreshed under the lock at unit starts and publishes.
  bool inc_found_ = false;
  double inc_score_ = 0.0;
  std::uint64_t inc_index_ = 0;
  SearchStats unit_stats_;
  std::vector<std::size_t> choices_;
  std::vector<std::vector<std::size_t>> parent_scratch_;
  std::vector<engine::ChainEvaluator::Extension> pending_;
  std::vector<std::size_t> pending_choice_;
};

/// Seeds the incumbent with the beam winner, re-scored through the same
/// leaf-scoring arithmetic the tree uses so comparisons are bit-exact.
void seed_incumbent(const Ctx& ctx, Shared& shared,
                    const BnbOptions& options) {
  if (options.seed_beam_width == 0 || ctx.n == 0) return;
  HybridDesign seed;
  try {
    seed = HybridOptimizer::beam(ctx.profile, ctx.candidates,
                                 ctx.constraints, options.seed_beam_width,
                                 ctx.objective);
  } catch (const std::runtime_error&) {
    return;  // constraints eliminated every design; start unseeded
  }
  std::vector<std::size_t> choices;
  choices.reserve(ctx.n);
  for (const adders::AdderCell& cell : seed.stages) {
    const std::uint16_t key = engine::MklCache::key_of(cell);
    std::size_t found = ctx.k;
    for (std::size_t c = 0; c < ctx.k; ++c) {
      if (engine::MklCache::key_of(ctx.candidates[c]) == key) {
        found = c;
        break;
      }
    }
    if (found == ctx.k) {
      throw std::logic_error(
          "BranchBoundOptimizer: beam seed cell not in the palette");
    }
    choices.push_back(found);
  }
  engine::ChainEvaluator eval(
      ctx.profile, std::vector<adders::AdderCell>(ctx.candidates.begin(),
                                                  ctx.candidates.end()));
  double score = 0.0;
  if (ctx.maximize) {
    const std::span<const std::size_t> prefix(choices.data(),
                                              choices.size() - 1);
    score = eval.final_success(prefix, choices.back());
  } else {
    score = detail::pmf_metric(eval.error_pmf(choices), ctx.objective);
  }
  std::uint64_t index = 0;
  for (std::size_t i = 0; i < ctx.n; ++i) {
    index = sat_add(index, sat_mul(choices[i], ctx.pow_k[i]));
  }
  shared.incumbent.found = true;
  shared.incumbent.score = score;
  shared.incumbent.index = index;
  shared.incumbent.choices = std::move(choices);
}

BnbResult run_search(const multibit::InputProfile& profile,
                     std::span<const adders::AdderCell> candidates,
                     const DesignConstraints& constraints,
                     Objective objective, const BnbOptions& options,
                     const BnbCheckpoint* from) {
  detail::require_candidates(candidates);
  if (candidates.size() > 255) {
    throw std::invalid_argument(
        "BranchBoundOptimizer: more than 255 candidate cells");
  }
  const Ctx ctx = make_ctx(profile, candidates, constraints, objective);
  Shared shared;
  shared.unit_done.assign(ctx.units, 0);
  if (from != nullptr) {
    validate_checkpoint(ctx, *from);
    shared.incumbent.found = from->incumbent_found;
    shared.incumbent.score = from->incumbent_score;
    shared.incumbent.index = from->incumbent_index;
    shared.incumbent.choices = from->incumbent_choices;
    for (const std::uint64_t u : from->completed_units) {
      if (!shared.unit_done[u]) {
        shared.unit_done[u] = 1;
        ++shared.units_completed;
      }
    }
    shared.stats = from->stats;
  } else {
    seed_incumbent(ctx, shared, options);
  }

  util::with_pool(options.threads, [&](util::ThreadPool& pool) {
    const bool inline_run =
        pool.thread_count() == 1 || pool.on_worker_thread();
    const std::uint64_t workers =
        inline_run ? 1
                   : std::min<std::uint64_t>(pool.thread_count(), ctx.units);
    shared.ranges.resize(static_cast<std::size_t>(workers));
    for (std::uint64_t w = 0; w < workers; ++w) {
      shared.ranges[w].next = ctx.units * w / workers;
      shared.ranges[w].end = ctx.units * (w + 1) / workers;
    }
    const auto worker_main = [&](std::size_t id) {
      try {
        Worker worker(ctx, shared, options, id);
        worker.run();
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (!shared.error) shared.error = std::current_exception();
        shared.suspended = true;  // stop the other workers early
      }
    };
    if (inline_run) {
      worker_main(0);
    } else {
      for (std::uint64_t w = 0; w < workers; ++w) {
        pool.submit([&worker_main, w] {
          worker_main(static_cast<std::size_t>(w));
        });
      }
      pool.wait();
    }
    return 0;
  });

  if (shared.error) std::rethrow_exception(shared.error);

  BnbResult result;
  result.complete = shared.units_completed == ctx.units;
  result.has_incumbent = shared.incumbent.found;
  if (result.has_incumbent) {
    std::vector<adders::AdderCell> stages;
    stages.reserve(ctx.n);
    for (const std::size_t c : shared.incumbent.choices) {
      stages.push_back(candidates[c]);
    }
    result.design = detail::finalize(std::move(stages), profile, objective);
    result.design.stats = shared.stats;
  } else {
    result.design.objective = objective;
    result.design.stats = shared.stats;
  }
  if (!result.complete) {
    result.checkpoint = build_checkpoint_locked(ctx, shared);
    if (options.checkpoint_sink) options.checkpoint_sink(result.checkpoint);
  } else if (!result.has_incumbent) {
    throw std::runtime_error(
        "BranchBoundOptimizer: no design satisfies the constraints");
  }
  return result;
}

}  // namespace

BnbResult BranchBoundOptimizer::optimize(
    const multibit::InputProfile& profile,
    std::span<const adders::AdderCell> candidates,
    const DesignConstraints& constraints, Objective objective,
    const BnbOptions& options) {
  return run_search(profile, candidates, constraints, objective, options,
                    nullptr);
}

BnbResult BranchBoundOptimizer::resume(
    const multibit::InputProfile& profile,
    std::span<const adders::AdderCell> candidates,
    const BnbCheckpoint& checkpoint, const DesignConstraints& constraints,
    Objective objective, const BnbOptions& options) {
  return run_search(profile, candidates, constraints, objective, options,
                    &checkpoint);
}

HybridDesign HybridOptimizer::branch_bound(
    const multibit::InputProfile& profile,
    std::span<const adders::AdderCell> candidates,
    const DesignConstraints& constraints, Objective objective,
    unsigned threads) {
  BnbOptions options;
  options.threads = threads;
  return BranchBoundOptimizer::optimize(profile, candidates, constraints,
                                        objective, options)
      .design;
}

}  // namespace sealpaa::explore

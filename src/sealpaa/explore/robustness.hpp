// "Four season adder" analysis (paper §5): how robust is each cell's
// error probability across the whole input-probability range?  The paper
// eyeballs Figure 5(a,b,c) and crowns LPAA6; this module scores it.
#pragma once

#include <string>
#include <vector>

namespace sealpaa::explore {

/// Aggregate error statistics of one cell over a probability grid.
struct RobustnessScore {
  std::string cell_name;
  double worst_error = 0.0;  // max P(Error) over the grid
  double mean_error = 0.0;   // average P(Error) over the grid
  double best_error = 0.0;   // min P(Error) over the grid
};

/// Evaluates every built-in LPAA as an N-bit homogeneous chain across a
/// uniform grid of input probabilities p in {step, 2*step, ..., 1-step}
/// (operands and carry all at p) and ranks by worst-case error.
[[nodiscard]] std::vector<RobustnessScore> four_season_ranking(
    std::size_t width, double step = 0.05);

}  // namespace sealpaa::explore

// Provably-optimal hybrid-chain search: branch-and-bound with admissible
// pruning, work-stealing parallelism and checkpoint/resume.
//
// The search tree assigns one candidate cell per stage, least
// significant first.  Two admissible bounds drive the pruning:
//
//  * err (maximize P(Success)): the success-filtered carry mass
//    c0 + c1 after a prefix is monotone non-increasing as stages are
//    appended (error rows are discarded, never added back — see
//    analysis::CarryState), so the prefix mass is an upper bound on the
//    final success probability of every completion.
//
//  * med / mse (minimize E[|err|] / E[err^2]): after a depth-d prefix,
//    every future contribution to the signed error — stage deltas
//    (s_approx - s_exact) * 2^i for i >= d and the carry-out fold
//    (ca - ce) * 2^stage — is a multiple of 2^d, so the final error of
//    any completion is congruent to the prefix error mod 2^d.  Summing
//    p * min(r, 2^d - r)^q (q = 1 for MED, 2 for MSE, r = value mod 2^d)
//    over the four joint-carry segment PMFs is therefore a lower bound
//    on the final metric.
//
// Pruning is *strict only*: a subtree is cut when its bound — widened by
// a small relative slack absorbing floating-point non-monotonicity —
// cannot beat the incumbent, and bound ties are always explored.  The
// incumbent is the pair (score, historical design index) under the same
// "better score, or equal score and lower index" rule the exhaustive DFS
// uses, a total order whose fold is order-independent, so the final
// design is identical to exhaustive() and independent of the thread
// count and of the work-stealing schedule.  (The index saturates for
// spaces beyond 2^64 designs; within the exhaustively checkable regime
// it is always exact.)
//
// Work is split at a shallow fixed depth into k^D prefix units (D the
// smallest depth with at least 64 units — a function of the space only,
// never of the thread count).  Units are dealt to per-worker ranges;
// each worker drains its own range in ascending unit order and steals
// the upper half of the largest remaining victim range when empty.
// With 1 thread the schedule degenerates to a pure sequential DFS in
// unit order, which is what makes node counts reproducible and
// checkpoints exact.
//
// Checkpoints snapshot the incumbent, the completed-unit set and the
// accumulated SearchStats at unit granularity.  They contain no RNG
// state and no partially-expanded subtrees, so resuming re-runs exactly
// the units that had not completed: single-threaded, an interrupted +
// resumed search reproduces the uninterrupted run's incumbent AND its
// nodes_expanded / nodes_pruned / candidates_evaluated totals
// bit-for-bit.  (Only the evaluator cache-warmth counters — cache_hits /
// cache_misses / stages_computed — may differ, because the resumed
// process starts its prefix caches cold.)  Serialization lives in
// obs/checkpoint.hpp (explore sits below the JSON layer); this header
// only defines the plain data snapshot and a sink callback.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sealpaa/explore/hybrid.hpp"

namespace sealpaa::explore {

/// Resumable snapshot of a branch-and-bound run, taken at unit
/// boundaries.  Plain data: JSON (de)serialization is
/// obs::to_json / obs::parse_bnb_checkpoint, file I/O is
/// obs::write_bnb_checkpoint / obs::read_bnb_checkpoint.
struct BnbCheckpoint {
  /// objective_name() of the search ("err", "med", "mse").
  std::string objective;
  std::size_t width = 0;
  /// 16-bit truth-table fingerprints of the candidate palette, in
  /// palette order (engine::MklCache::key_of).  resume() refuses a
  /// checkpoint whose palette does not match.
  std::vector<std::uint16_t> palette;
  /// The input profile the search ran under (validated on resume).
  std::vector<double> p_a;
  std::vector<double> p_b;
  double p_cin = 0.0;
  /// The constraints the search ran under (validated on resume).
  std::optional<double> max_power_nw;
  std::optional<double> max_area_ge;
  /// Static unit split: all k^split_depth depth-`split_depth` prefixes.
  std::size_t split_depth = 0;
  std::uint64_t total_units = 0;
  /// The incumbent: best (score, historical index) design seen so far.
  bool incumbent_found = false;
  std::vector<std::size_t> incumbent_choices;
  double incumbent_score = 0.0;
  std::uint64_t incumbent_index = 0;
  /// Units fully processed (ascending).  Resume re-runs the complement.
  std::vector<std::uint64_t> completed_units;
  /// Search accounting accumulated over the completed units.
  SearchStats stats;
};

/// Tuning and lifecycle knobs for one branch-and-bound run.
struct BnbOptions {
  /// Worker threads (0 → util::default_threads()).  The final design is
  /// identical for every value; only node/cache counters and wall time
  /// vary beyond 1 thread.
  unsigned threads = 0;
  /// Width of the beam search whose winner seeds the incumbent (a good
  /// initial incumbent is what makes the bound prune from node one).
  /// 0 disables seeding — the search then starts pruning only after its
  /// first scored leaf.
  std::size_t seed_beam_width = 64;
  /// Invoke `checkpoint_sink` after every this-many completed units
  /// (0 = only when suspending).  The sink runs under the scheduler
  /// lock: keep it to serialization + file I/O and never call back into
  /// the optimizer from it.
  std::uint64_t checkpoint_every_units = 0;
  std::function<void(const BnbCheckpoint&)> checkpoint_sink;
  /// Stop claiming new units once this many completed (0 = run to
  /// completion).  The result then carries complete == false and the
  /// final checkpoint; used by the kill/resume tests and the CLI's
  /// --suspend-after-units flag.  Workers finish the unit they are on,
  /// so more units than the threshold may complete when threads > 1.
  std::uint64_t suspend_after_units = 0;
};

/// Outcome of optimize() / resume().
struct BnbResult {
  /// The finalized incumbent (the exact optimum when complete).  Valid
  /// only when has_incumbent; its stats field carries the accumulated
  /// SearchStats either way.
  HybridDesign design;
  /// False when the run suspended via BnbOptions::suspend_after_units.
  bool complete = true;
  /// False only for a suspended run that had found no design yet (no
  /// seed and every completed unit constraint-rejected or pruned).
  bool has_incumbent = false;
  /// Filled when !complete: resume from exactly here.
  BnbCheckpoint checkpoint;
};

class BranchBoundOptimizer {
 public:
  /// Runs the search from scratch.  Throws std::invalid_argument on an
  /// empty palette (or one beyond 255 cells) and std::runtime_error when
  /// the constraints eliminate every design (completion only — a
  /// suspended run reports has_incumbent = false instead).
  [[nodiscard]] static BnbResult optimize(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {},
      Objective objective = Objective::kErrorRate,
      const BnbOptions& options = {});

  /// Continues a checkpointed search: re-runs exactly the units the
  /// checkpoint lists as not completed, starting from its incumbent and
  /// stats.  Throws std::invalid_argument when the checkpoint does not
  /// match (objective, width, palette fingerprints, profile,
  /// constraints).  The beam seed is skipped — the checkpoint incumbent
  /// already dominates it.
  [[nodiscard]] static BnbResult resume(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const BnbCheckpoint& checkpoint,
      const DesignConstraints& constraints = {},
      Objective objective = Objective::kErrorRate,
      const BnbOptions& options = {});
};

}  // namespace sealpaa::explore

#include "sealpaa/explore/block_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace sealpaa::explore {

namespace {

/// Lexicographic order on block lists — the deterministic tie-break.
bool blocks_less(const std::vector<multibit::SubBlock>& a,
                 const std::vector<multibit::SubBlock>& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const multibit::SubBlock& x, const multibit::SubBlock& y) {
        if (x.result_width != y.result_width) {
          return x.result_width < y.result_width;
        }
        return x.prediction_width < y.prediction_width;
      });
}

/// Exact carry distribution P(carry into bit j = 1) under the profile.
std::vector<double> carry_distribution(const multibit::InputProfile& profile) {
  const std::size_t n = profile.width();
  std::vector<double> p_carry_at(n + 1, 0.0);
  double carry_one = profile.p_cin();
  for (std::size_t j = 0; j < n; ++j) {
    p_carry_at[j] = carry_one;
    const double pa = profile.p_a(j);
    const double pb = profile.p_b(j);
    carry_one = pa * pb + (pa * (1.0 - pb) + pb * (1.0 - pa)) * carry_one;
  }
  p_carry_at[n] = carry_one;
  return p_carry_at;
}

/// Closed-form mismatch marginal of a block whose result starts at `s`
/// with a `p`-bit prediction window (exact; depends only on bits < s).
double block_mismatch(const multibit::InputProfile& profile,
                      const std::vector<double>& p_carry_at, int s, int p) {
  double mismatch = p_carry_at[static_cast<std::size_t>(s - p)];
  for (int j = s - p; j < s; ++j) {
    const double pa = profile.p_a(static_cast<std::size_t>(j));
    const double pb = profile.p_b(static_cast<std::size_t>(j));
    mismatch *= pa * (1.0 - pb) + pb * (1.0 - pa);
  }
  return mismatch;
}

/// Exact objective value of a complete partition; returns false (design
/// rejected) when the spec violates a structural rail such as the
/// live-window cap.
bool score_exact(const multibit::InputProfile& profile,
                 const std::vector<multibit::SubBlock>& blocks,
                 const BlockSearchOptions& options, double& value) {
  analysis::BlockAnalysisOptions opts;
  opts.pmf = options.pmf;
  opts.compute_pmf = options.objective != Objective::kErrorRate;
  try {
    const analysis::BlockAnalysis result = analysis::BlockErrorModel::analyze(
        multibit::BlockChainSpec(blocks), profile, opts);
    switch (options.objective) {
      case Objective::kErrorRate:
        value = result.p_error;
        break;
      case Objective::kMed:
        value = result.pmf.mean_error_distance();
        break;
      case Objective::kMse:
        value = result.pmf.mean_squared_error();
        break;
    }
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

BlockDesign finish(const multibit::InputProfile& profile,
                   std::vector<multibit::SubBlock> blocks, double value,
                   const BlockSearchOptions& options, SearchStats stats) {
  BlockDesign design;
  design.blocks = std::move(blocks);
  design.objective_value = value;
  analysis::BlockAnalysisOptions opts;
  opts.pmf = options.pmf;
  const analysis::BlockAnalysis result = analysis::BlockErrorModel::analyze(
      design.spec(), profile, opts);
  design.p_error = result.p_error;
  design.med = result.pmf.mean_error_distance();
  design.mse = result.pmf.mean_squared_error();
  design.stats = stats;
  return design;
}

void validate(const multibit::InputProfile& profile,
              const BlockSearchOptions& options, const char* who) {
  if (options.max_sub_adder_width < 1) {
    throw std::invalid_argument(std::string(who) +
                                ": max_sub_adder_width must be >= 1");
  }
  if (profile.width() < 1 || profile.width() > 62) {
    throw std::invalid_argument(std::string(who) +
                                ": profile width must be in [1, 62]");
  }
}

}  // namespace

BlockDesign BlockOptimizer::exhaustive(const multibit::InputProfile& profile,
                                       const BlockSearchOptions& options) {
  validate(profile, options, "BlockOptimizer::exhaustive");
  const int n = static_cast<int>(profile.width());
  const int l_max = options.max_sub_adder_width;

  // Count feasible partitions of [s, n) first so a too-wide search
  // fails fast instead of running for hours.
  std::vector<std::uint64_t> count(static_cast<std::size_t>(n) + 1, 0);
  count[static_cast<std::size_t>(n)] = 1;
  for (int s = n - 1; s >= 0; --s) {
    std::uint64_t total = 0;
    for (int r = 1; r <= std::min(l_max, n - s); ++r) {
      const std::uint64_t p_choices =
          s == 0 ? 1
                 : static_cast<std::uint64_t>(std::min(s, l_max - r)) + 1;
      const std::uint64_t sub = count[static_cast<std::size_t>(s + r)];
      if (sub != 0 && p_choices > (options.max_designs * 2) / sub) {
        total = options.max_designs + 1;  // saturate, no overflow
        break;
      }
      total += p_choices * sub;
      if (total > options.max_designs) break;
    }
    count[static_cast<std::size_t>(s)] = std::min(
        total, options.max_designs + 1);
  }
  if (count[0] > options.max_designs) {
    throw std::invalid_argument(
        "BlockOptimizer::exhaustive: feasible design count exceeds the "
        "guard (" +
        std::to_string(options.max_designs) +
        "); raise max_designs or use beam()");
  }

  SearchStats stats;
  std::vector<multibit::SubBlock> current;
  std::vector<multibit::SubBlock> best_blocks;
  double best_value = 0.0;
  bool have_best = false;

  const auto dfs = [&](const auto& self, int s) -> void {
    if (s == n) {
      double value = 0.0;
      ++stats.candidates_evaluated;
      if (!score_exact(profile, current, options, value)) {
        ++stats.candidates_rejected;
        return;
      }
      if (!have_best || value < best_value ||
          (value == best_value && blocks_less(current, best_blocks))) {
        have_best = true;
        best_value = value;
        best_blocks = current;
      }
      return;
    }
    for (int r = 1; r <= std::min(l_max, n - s); ++r) {
      const int p_max = s == 0 ? 0 : std::min(s, l_max - r);
      for (int p = 0; p <= p_max; ++p) {
        current.push_back({r, p});
        self(self, s + r);
        current.pop_back();
      }
    }
  };
  dfs(dfs, 0);

  if (!have_best) {
    throw std::invalid_argument(
        "BlockOptimizer::exhaustive: no feasible partition (budget too "
        "tight for the width)");
  }
  return finish(profile, std::move(best_blocks), best_value, options, stats);
}

BlockDesign BlockOptimizer::beam(const multibit::InputProfile& profile,
                                 const BlockSearchOptions& options) {
  validate(profile, options, "BlockOptimizer::beam");
  const int n = static_cast<int>(profile.width());
  const int l_max = options.max_sub_adder_width;
  const std::vector<double> p_carry_at = carry_distribution(profile);

  struct Partial {
    std::vector<multibit::SubBlock> blocks;
    double p_all_ok = 1.0;  // prod(1 - mismatch_i), the ranking heuristic
  };
  const auto partial_less = [](const Partial& a, const Partial& b) {
    if (a.p_all_ok != b.p_all_ok) return a.p_all_ok > b.p_all_ok;
    return blocks_less(a.blocks, b.blocks);
  };

  SearchStats stats;
  std::vector<std::vector<Partial>> frontier(
      static_cast<std::size_t>(n) + 1);
  frontier[0].push_back(Partial{});

  for (int s = 0; s < n; ++s) {
    auto& bucket = frontier[static_cast<std::size_t>(s)];
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end(), partial_less);
    if (bucket.size() > options.beam_width) {
      bucket.resize(options.beam_width);
    }
    for (const Partial& partial : bucket) {
      for (int r = 1; r <= std::min(l_max, n - s); ++r) {
        const int p_max = s == 0 ? 0 : std::min(s, l_max - r);
        for (int p = 0; p <= p_max; ++p) {
          Partial next;
          next.blocks = partial.blocks;
          next.blocks.push_back({r, p});
          next.p_all_ok = partial.p_all_ok;
          if (s > 0) {
            next.p_all_ok *=
                1.0 - block_mismatch(profile, p_carry_at, s, p);
          }
          frontier[static_cast<std::size_t>(s + r)].push_back(
              std::move(next));
        }
      }
    }
    bucket.clear();  // partials at s are fully expanded
  }

  auto& complete = frontier[static_cast<std::size_t>(n)];
  if (complete.empty()) {
    throw std::invalid_argument(
        "BlockOptimizer::beam: no feasible partition (budget too tight "
        "for the width)");
  }
  std::sort(complete.begin(), complete.end(), partial_less);
  if (complete.size() > options.beam_width) {
    complete.resize(options.beam_width);
  }

  std::vector<multibit::SubBlock> best_blocks;
  double best_value = 0.0;
  bool have_best = false;
  for (const Partial& candidate : complete) {
    double value = 0.0;
    ++stats.candidates_evaluated;
    if (!score_exact(profile, candidate.blocks, options, value)) {
      ++stats.candidates_rejected;
      continue;
    }
    if (!have_best || value < best_value ||
        (value == best_value && blocks_less(candidate.blocks, best_blocks))) {
      have_best = true;
      best_value = value;
      best_blocks = candidate.blocks;
    }
  }
  if (!have_best) {
    throw std::invalid_argument(
        "BlockOptimizer::beam: every surviving candidate was rejected");
  }
  return finish(profile, std::move(best_blocks), best_value, options, stats);
}

}  // namespace sealpaa::explore

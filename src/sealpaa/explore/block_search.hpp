// Design-space exploration over block-adder partitions: which
// heterogeneous (R_i, P_i) assignment minimises the error objective
// under a latency budget (every sub-adder at most `max_sub_adder_width`
// bits — the carry-chain length the hardware must close timing on)?
//
// Complete designs are scored exactly through
// analysis::BlockErrorModel; the beam ranks *partial* partitions by the
// closed-form independence approximation (each block's mismatch
// marginal depends only on bits below it, so the partial score never
// changes as the partition grows rightward), then re-scores the
// surviving complete designs exactly and returns the true optimum of
// the beam.  The exhaustive search enumerates every feasible partition
// and is the ground truth the beam is validated against.
#pragma once

#include <cstdint>
#include <vector>

#include "sealpaa/analysis/block_error.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::explore {

struct BlockSearchOptions {
  /// Latency budget: every sub-adder (P_i + R_i, and block 0's R_0)
  /// must fit this many bits.  Must be >= 1.
  int max_sub_adder_width = 8;
  /// Partial partitions kept per position by the beam.
  std::size_t beam_width = 64;
  /// What complete designs are ranked by (kErrorRate, kMed, kMse — the
  /// latter two via the analytic PMF).
  Objective objective = Objective::kErrorRate;
  /// Forwarded to the exact PMF scoring.
  analysis::PmfOptions pmf;
  /// Feasible-design guard for the exhaustive search (throws
  /// std::invalid_argument beyond it).
  std::uint64_t max_designs = 2'000'000;
};

/// A fully evaluated block-partition design.
struct BlockDesign {
  std::vector<multibit::SubBlock> blocks;
  /// The exact objective value the design was ranked by.
  double objective_value = 0.0;
  double p_error = 0.0;
  double med = 0.0;
  double mse = 0.0;
  SearchStats stats;

  [[nodiscard]] multibit::BlockChainSpec spec() const {
    return multibit::BlockChainSpec(blocks);
  }
};

class BlockOptimizer {
 public:
  /// Exact optimum by enumerating every partition whose sub-adders fit
  /// the budget.  Deterministic tie-break: the lexicographically
  /// smallest (R_i, P_i) list wins among equal scores.
  [[nodiscard]] static BlockDesign exhaustive(
      const multibit::InputProfile& profile,
      const BlockSearchOptions& options = {});

  /// Beam search over partitions, LSB to MSB; partials ranked by the
  /// independence-approximation error of their chosen blocks, survivors
  /// scored exactly.  Same tie-break as exhaustive, so
  /// beam(beam_width=inf) == exhaustive.
  [[nodiscard]] static BlockDesign beam(
      const multibit::InputProfile& profile,
      const BlockSearchOptions& options = {});
};

}  // namespace sealpaa::explore

// Internal helpers shared by the hybrid-chain optimizers (hybrid.cpp and
// branch_bound.cpp).  Not part of the public explore API — subject to
// change without notice; include only from explore/*.cpp.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/analysis/error_pmf.hpp"
#include "sealpaa/explore/hybrid.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::explore::detail {

/// Finalized-prefix metric for the PMF-ranked objectives (kMed / kMse).
[[nodiscard]] double pmf_metric(const analysis::ErrorPmf& pmf,
                                Objective objective);

struct CellCost {
  std::optional<double> power;
  std::optional<double> area;
};

/// Table 2 characteristics lookup; both fields nullopt for cells without
/// a row.
[[nodiscard]] CellCost cost_of(const adders::AdderCell& cell);

/// A candidate is usable under `constraints` if every constrained
/// dimension has data for it.
[[nodiscard]] bool usable(const CellCost& cost,
                          const DesignConstraints& constraints);

/// Evaluates a complete stage assignment into a HybridDesign
/// (p_error/p_success, the analytic MED/MSE/WCE when the PMF support
/// guard allows, summed power/area).  stats is left default — the
/// optimizer that produced the design fills it.
[[nodiscard]] HybridDesign finalize(std::vector<adders::AdderCell> stages,
                                    const multibit::InputProfile& profile,
                                    Objective objective);

/// Throws std::invalid_argument when the candidate palette is empty.
void require_candidates(std::span<const adders::AdderCell> candidates);

}  // namespace sealpaa::explore::detail

#include "sealpaa/explore/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::explore {

namespace {

struct CellCost {
  std::optional<double> power;
  std::optional<double> area;
};

CellCost cost_of(const adders::AdderCell& cell) {
  const adders::CellCharacteristics* row =
      adders::find_characteristics(cell);
  if (row == nullptr) return {};
  return {row->power_nw, row->area_ge};
}

// A candidate is usable under `constraints` if every constrained
// dimension has data for it.
bool usable(const CellCost& cost, const DesignConstraints& constraints) {
  if (constraints.max_power_nw && !cost.power) return false;
  if (constraints.max_area_ge && !cost.area) return false;
  return true;
}

HybridDesign finalize(std::vector<adders::AdderCell> stages,
                      const multibit::InputProfile& profile) {
  HybridDesign design;
  design.stages = std::move(stages);
  const analysis::AnalysisResult result = analysis::RecursiveAnalyzer::analyze(
      multibit::AdderChain(design.stages), profile);
  design.p_success = result.p_success;
  design.p_error = result.p_error;
  double power = 0.0;
  double area = 0.0;
  bool have_power = true;
  bool have_area = true;
  for (const adders::AdderCell& cell : design.stages) {
    const CellCost cost = cost_of(cell);
    if (cost.power) {
      power += *cost.power;
    } else {
      have_power = false;
    }
    if (cost.area) {
      area += *cost.area;
    } else {
      have_area = false;
    }
  }
  if (have_power) design.power_nw = power;
  if (have_area) design.area_ge = area;
  return design;
}

void require_candidates(std::span<const adders::AdderCell> candidates) {
  if (candidates.empty()) {
    throw std::invalid_argument("HybridOptimizer: no candidate cells");
  }
}

}  // namespace

HybridDesign HybridOptimizer::exhaustive(
    const multibit::InputProfile& profile,
    std::span<const adders::AdderCell> candidates,
    const DesignConstraints& constraints, std::uint64_t max_combinations,
    unsigned threads) {
  require_candidates(candidates);
  const std::size_t n = profile.width();
  const std::uint64_t k = candidates.size();
  const double combos =
      std::pow(static_cast<double>(k), static_cast<double>(n));
  if (combos > static_cast<double>(max_combinations)) {
    throw std::invalid_argument(
        "HybridOptimizer::exhaustive: search space too large; use beam()");
  }
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= k;

  std::vector<CellCost> costs;
  std::vector<analysis::MklMatrices> mkls;
  costs.reserve(candidates.size());
  mkls.reserve(candidates.size());
  for (const adders::AdderCell& cell : candidates) {
    costs.push_back(cost_of(cell));
    mkls.push_back(analysis::MklMatrices::from_cell(cell));
  }

  // Designs are indexed in mixed radix k, stage 0 the least-significant
  // digit — the same order the sequential odometer enumerated.  Ties in
  // p_success keep the lowest index (within a shard by strict comparison,
  // across shards by the ordered reduction), so the winner is independent
  // of the thread count.
  struct BestDesign {
    double p_success = -1.0;
    std::uint64_t index = 0;
    bool found = false;
    std::uint64_t evaluated = 0;  // designs scored by the recursion
    std::uint64_t rejected = 0;   // designs pruned by the constraints
  };
  util::WallTimer search_timer;

  const std::uint64_t grain = std::max<std::uint64_t>(1, total / 64);
  const BestDesign best = util::with_pool(threads, [&](util::ThreadPool&
                                                           pool) {
    return util::parallel_map_reduce(
        pool, 0, total, grain, BestDesign{},
        [&](std::uint64_t index_begin, std::uint64_t index_end) {
          BestDesign shard_best;
          std::vector<std::size_t> choice(n);
          std::uint64_t rest = index_begin;
          for (std::size_t i = 0; i < n; ++i) {
            choice[i] = static_cast<std::size_t>(rest % k);
            rest /= k;
          }
          for (std::uint64_t index = index_begin; index < index_end; ++index) {
            [&] {
              double power = 0.0;
              double area = 0.0;
              for (std::size_t i = 0; i < n; ++i) {
                const CellCost& cost = costs[choice[i]];
                if (!usable(cost, constraints)) {
                  ++shard_best.rejected;
                  return;
                }
                if (constraints.max_power_nw) power += *cost.power;
                if (constraints.max_area_ge) area += *cost.area;
              }
              if (constraints.max_power_nw &&
                  power > *constraints.max_power_nw) {
                ++shard_best.rejected;
                return;
              }
              if (constraints.max_area_ge && area > *constraints.max_area_ge) {
                ++shard_best.rejected;
                return;
              }

              ++shard_best.evaluated;
              analysis::CarryState carry{1.0 - profile.p_cin(),
                                         profile.p_cin()};
              double p_success = 0.0;
              for (std::size_t i = 0; i < n; ++i) {
                const analysis::MklMatrices& mkl = mkls[choice[i]];
                if (i + 1 == n) {
                  p_success = analysis::final_success(mkl, profile.p_a(i),
                                                      profile.p_b(i), carry);
                } else {
                  carry = analysis::advance_stage(mkl, profile.p_a(i),
                                                  profile.p_b(i), carry);
                }
              }
              if (!shard_best.found || p_success > shard_best.p_success) {
                shard_best.p_success = p_success;
                shard_best.index = index;
                shard_best.found = true;
              }
            }();
            // Odometer step to the next assignment.
            for (std::size_t pos = 0; pos < n; ++pos) {
              if (++choice[pos] < k) break;
              choice[pos] = 0;
            }
          }
          return shard_best;
        },
        [](BestDesign& acc, BestDesign&& shard) {
          acc.evaluated += shard.evaluated;
          acc.rejected += shard.rejected;
          if (shard.found && (!acc.found || shard.p_success > acc.p_success)) {
            acc.p_success = shard.p_success;
            acc.index = shard.index;
            acc.found = true;
          }
        });
  });

  if (!best.found) {
    throw std::runtime_error(
        "HybridOptimizer::exhaustive: no design satisfies the constraints");
  }
  std::vector<adders::AdderCell> stages;
  stages.reserve(n);
  std::uint64_t rest = best.index;
  for (std::size_t i = 0; i < n; ++i) {
    stages.push_back(candidates[static_cast<std::size_t>(rest % k)]);
    rest /= k;
  }
  HybridDesign design = finalize(std::move(stages), profile);
  design.stats.candidates_evaluated = best.evaluated;
  design.stats.candidates_rejected = best.rejected;
  design.stats.seconds = search_timer.elapsed_seconds();
  return design;
}

HybridDesign HybridOptimizer::beam(const multibit::InputProfile& profile,
                                   std::span<const adders::AdderCell> candidates,
                                   const DesignConstraints& constraints,
                                   std::size_t beam_width) {
  require_candidates(candidates);
  if (beam_width == 0) {
    throw std::invalid_argument("HybridOptimizer::beam: beam width 0");
  }
  const std::size_t n = profile.width();
  util::WallTimer search_timer;
  SearchStats stats;

  std::vector<CellCost> costs;
  std::vector<analysis::MklMatrices> mkls;
  costs.reserve(candidates.size());
  mkls.reserve(candidates.size());
  for (const adders::AdderCell& cell : candidates) {
    costs.push_back(cost_of(cell));
    mkls.push_back(analysis::MklMatrices::from_cell(cell));
  }

  struct Partial {
    std::vector<std::size_t> choice;
    analysis::CarryState carry;
    double power = 0.0;
    double area = 0.0;
  };

  std::vector<Partial> beam_set{
      Partial{{}, {1.0 - profile.p_cin(), profile.p_cin()}, 0.0, 0.0}};

  double best_success = -1.0;
  std::vector<std::size_t> best_choice;

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Partial> expanded;
    expanded.reserve(beam_set.size() * candidates.size());
    for (const Partial& partial : beam_set) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (!usable(costs[c], constraints)) {
          ++stats.candidates_rejected;
          continue;
        }
        Partial next = partial;
        if (constraints.max_power_nw) {
          next.power += *costs[c].power;
          if (next.power > *constraints.max_power_nw) {
            ++stats.candidates_rejected;
            continue;
          }
        }
        if (constraints.max_area_ge) {
          next.area += *costs[c].area;
          if (next.area > *constraints.max_area_ge) {
            ++stats.candidates_rejected;
            continue;
          }
        }
        ++stats.candidates_evaluated;
        next.choice.push_back(c);
        if (i + 1 == n) {
          const double p_success = analysis::final_success(
              mkls[c], profile.p_a(i), profile.p_b(i), partial.carry);
          if (p_success > best_success) {
            best_success = p_success;
            best_choice = next.choice;
          }
        } else {
          next.carry = analysis::advance_stage(mkls[c], profile.p_a(i),
                                               profile.p_b(i), partial.carry);
          expanded.push_back(std::move(next));
        }
      }
    }
    if (i + 1 == n) break;
    if (expanded.empty()) {
      throw std::runtime_error(
          "HybridOptimizer::beam: constraints eliminated every design");
    }
    const std::size_t keep = std::min(beam_width, expanded.size());
    std::partial_sort(expanded.begin(),
                      expanded.begin() + static_cast<std::ptrdiff_t>(keep),
                      expanded.end(), [](const Partial& a, const Partial& b) {
                        return a.carry.success_mass() > b.carry.success_mass();
                      });
    expanded.resize(keep);
    beam_set = std::move(expanded);
  }

  if (best_choice.empty()) {
    throw std::runtime_error(
        "HybridOptimizer::beam: no design satisfies the constraints");
  }
  std::vector<adders::AdderCell> stages;
  stages.reserve(n);
  for (std::size_t c : best_choice) stages.push_back(candidates[c]);
  HybridDesign design = finalize(std::move(stages), profile);
  stats.seconds = search_timer.elapsed_seconds();
  design.stats = stats;
  return design;
}

HybridDesign HybridOptimizer::greedy(const multibit::InputProfile& profile,
                                     std::span<const adders::AdderCell> candidates,
                                     const DesignConstraints& constraints) {
  return beam(profile, candidates, constraints, 1);
}

}  // namespace sealpaa::explore

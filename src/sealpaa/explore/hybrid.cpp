#include "sealpaa/explore/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/engine/chain_evaluator.hpp"
#include "sealpaa/engine/incremental.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/explore/detail.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::explore {

// Shared with branch_bound.cpp through explore/detail.hpp so every
// optimizer finalizes designs and applies constraints through the exact
// same code (bit-consistent scores and rejection decisions).
namespace detail {

double pmf_metric(const analysis::ErrorPmf& pmf, Objective objective) {
  return objective == Objective::kMse ? pmf.mean_squared_error()
                                      : pmf.mean_error_distance();
}

CellCost cost_of(const adders::AdderCell& cell) {
  const adders::CellCharacteristics* row =
      adders::find_characteristics(cell);
  if (row == nullptr) return {};
  return {row->power_nw, row->area_ge};
}

bool usable(const CellCost& cost, const DesignConstraints& constraints) {
  if (constraints.max_power_nw && !cost.power) return false;
  if (constraints.max_area_ge && !cost.area) return false;
  return true;
}

HybridDesign finalize(std::vector<adders::AdderCell> stages,
                      const multibit::InputProfile& profile,
                      Objective objective) {
  HybridDesign design;
  design.stages = std::move(stages);
  design.objective = objective;
  // p_error/p_success go through the same recursion call sequence
  // regardless of the objective (kAnalyticPmf shares kRecursive's exact
  // code path), so switching objectives never perturbs the reported
  // error probability.
  const multibit::AdderChain chain(design.stages);
  try {
    const engine::Evaluation result =
        engine::evaluate(chain, profile, engine::Method::kAnalyticPmf);
    design.p_success = result.p_success;
    design.p_error = result.p_error;
    design.med = result.distribution->mean_error_distance;
    design.mse = result.distribution->mean_squared_error;
    design.wce = result.distribution->worst_case_error;
  } catch (const std::length_error&) {
    // PMF support guard tripped: report the probability-only result.
    const engine::Evaluation result =
        engine::evaluate(chain, profile, engine::Method::kRecursive);
    design.p_success = result.p_success;
    design.p_error = result.p_error;
  }
  double power = 0.0;
  double area = 0.0;
  bool have_power = true;
  bool have_area = true;
  for (const adders::AdderCell& cell : design.stages) {
    const CellCost cost = cost_of(cell);
    if (cost.power) {
      power += *cost.power;
    } else {
      have_power = false;
    }
    if (cost.area) {
      area += *cost.area;
    } else {
      have_area = false;
    }
  }
  if (have_power) design.power_nw = power;
  if (have_area) design.area_ge = area;
  return design;
}

void require_candidates(std::span<const adders::AdderCell> candidates) {
  if (candidates.empty()) {
    throw std::invalid_argument("HybridOptimizer: no candidate cells");
  }
}

}  // namespace detail

namespace {
using detail::CellCost;
using detail::cost_of;
using detail::finalize;
using detail::pmf_metric;
using detail::require_candidates;
using detail::usable;
}  // namespace

std::string_view objective_name(Objective objective) {
  switch (objective) {
    case Objective::kErrorRate: return "err";
    case Objective::kMed: return "med";
    case Objective::kMse: return "mse";
  }
  throw std::invalid_argument("explore::objective_name: unknown objective");
}

Objective parse_objective(std::string_view name) {
  if (name == "err") return Objective::kErrorRate;
  if (name == "med") return Objective::kMed;
  if (name == "mse") return Objective::kMse;
  throw std::invalid_argument("unknown objective '" + std::string(name) +
                              "' (valid: err, med, mse)");
}

HybridDesign HybridOptimizer::exhaustive(
    const multibit::InputProfile& profile,
    std::span<const adders::AdderCell> candidates,
    const DesignConstraints& constraints, std::uint64_t max_combinations,
    unsigned threads, Objective objective) {
  require_candidates(candidates);
  const std::size_t n = profile.width();
  const std::uint64_t k = candidates.size();
  const double combos =
      std::pow(static_cast<double>(k), static_cast<double>(n));
  if (combos > static_cast<double>(max_combinations)) {
    throw std::invalid_argument(
        "HybridOptimizer::exhaustive: search space too large; use beam()");
  }
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= k;

  std::vector<CellCost> costs;
  std::vector<analysis::MklMatrices> mkls;
  std::vector<bool> cell_usable;
  std::vector<double> power_of;  // 0.0 placeholder for unusable cells
  std::vector<double> area_of;
  costs.reserve(candidates.size());
  mkls.reserve(candidates.size());
  cell_usable.reserve(candidates.size());
  power_of.reserve(candidates.size());
  area_of.reserve(candidates.size());
  for (const adders::AdderCell& cell : candidates) {
    const CellCost cost = cost_of(cell);
    costs.push_back(cost);
    mkls.push_back(analysis::MklMatrices::from_cell(cell));
    const bool ok = usable(cost, constraints);
    cell_usable.push_back(ok);
    power_of.push_back(ok && cost.power ? *cost.power : 0.0);
    area_of.push_back(ok && cost.area ? *cost.area : 0.0);
  }
  const bool track_power = constraints.max_power_nw.has_value();
  const bool track_area = constraints.max_area_ge.has_value();

  // Historical design index (mixed radix k, stage 0 the least-significant
  // digit), kept as the explicit tie-break key so the reported winner is
  // the same design the sequential stage-0-fastest odometer would have
  // found first — independent of the walk order and the thread count.
  std::vector<std::uint64_t> pow_k(n);
  {
    std::uint64_t p = 1;
    for (std::size_t i = 0; i < n; ++i) {
      pow_k[i] = p;
      p *= k;
    }
  }

  // PMF-ranked objectives run the same odometer walk but push whole
  // cells (the PMF advance needs the sum column, which the M/K/L
  // matrices do not carry) and score each leaf by the finalized prefix
  // PMF's metric.  The err objective keeps its historical matrices-only
  // walk below, untouched — its results stay bit-identical.
  if (objective != Objective::kErrorRate) {
    struct BestMetric {
      double metric = 0.0;
      std::uint64_t index = 0;  // historical stage-0-fastest design index
      bool found = false;
      std::uint64_t evaluated = 0;
      std::uint64_t rejected = 0;
      std::uint64_t stages = 0;  // PMF stage advances performed
    };
    const std::uint64_t grain = std::max<std::uint64_t>(1, total / 64);
    const BestMetric best = util::with_pool(threads, [&](util::ThreadPool&
                                                             pool) {
      return util::parallel_map_reduce(
          pool, 0, total, grain, BestMetric{},
          [&](std::uint64_t index_begin, std::uint64_t index_end) {
            BestMetric shard;
            std::vector<std::size_t> choice(n);
            {
              std::uint64_t rest = index_begin;
              for (std::size_t i = n; i-- > 0;) {
                choice[i] = static_cast<std::size_t>(rest % k);
                rest /= k;
              }
            }
            std::uint64_t orig_index = 0;
            std::size_t unusable_stages = 0;
            for (std::size_t i = 0; i < n; ++i) {
              orig_index += static_cast<std::uint64_t>(choice[i]) * pow_k[i];
              if (!cell_usable[choice[i]]) ++unusable_stages;
            }
            std::vector<double> power_pre(n + 1, 0.0);
            std::vector<double> area_pre(n + 1, 0.0);
            const auto rebuild_budgets = [&](std::size_t from) {
              if (track_power) {
                for (std::size_t i = from; i < n; ++i) {
                  power_pre[i + 1] = power_pre[i] + power_of[choice[i]];
                }
              }
              if (track_area) {
                for (std::size_t i = from; i < n; ++i) {
                  area_pre[i + 1] = area_pre[i] + area_of[choice[i]];
                }
              }
            };
            rebuild_budgets(0);

            engine::IncrementalAnalyzer inc(profile);
            inc.enable_pmf_tracking();
            for (std::size_t i = 0; i + 1 < n; ++i) {
              inc.push_stage(candidates[choice[i]]);
              ++shard.stages;
            }

            for (std::uint64_t index = index_begin; index < index_end;
                 ++index) {
              bool reject = unusable_stages > 0;
              if (!reject && track_power &&
                  power_pre[n] > *constraints.max_power_nw) {
                reject = true;
              }
              if (!reject && track_area &&
                  area_pre[n] > *constraints.max_area_ge) {
                reject = true;
              }
              if (reject) {
                ++shard.rejected;
              } else {
                ++shard.evaluated;
                inc.push_stage(candidates[choice[n - 1]]);
                ++shard.stages;
                const double metric = pmf_metric(inc.error_pmf(), objective);
                inc.pop();
                if (!shard.found || metric < shard.metric ||
                    (metric == shard.metric && orig_index < shard.index)) {
                  shard.metric = metric;
                  shard.index = orig_index;
                  shard.found = true;
                }
              }
              if (index + 1 == index_end) break;

              std::size_t pos = n;
              for (;;) {
                --pos;
                if (!cell_usable[choice[pos]]) --unusable_stages;
                if (choice[pos] + 1 < k) {
                  ++choice[pos];
                  orig_index += pow_k[pos];
                  if (!cell_usable[choice[pos]]) ++unusable_stages;
                  break;
                }
                choice[pos] = 0;
                orig_index -= (k - 1) * pow_k[pos];
                if (!cell_usable[choice[pos]]) ++unusable_stages;
              }
              rebuild_budgets(pos);
              if (pos + 1 < n) {
                inc.rewind(pos);
                for (std::size_t i = pos; i + 1 < n; ++i) {
                  inc.push_stage(candidates[choice[i]]);
                  ++shard.stages;
                }
              }
            }
            return shard;
          },
          [](BestMetric& acc, BestMetric&& shard) {
            acc.evaluated += shard.evaluated;
            acc.rejected += shard.rejected;
            acc.stages += shard.stages;
            if (shard.found &&
                (!acc.found || shard.metric < acc.metric ||
                 (shard.metric == acc.metric && shard.index < acc.index))) {
              acc.metric = shard.metric;
              acc.index = shard.index;
              acc.found = true;
            }
          });
    });

    if (!best.found) {
      throw std::runtime_error(
          "HybridOptimizer::exhaustive: no design satisfies the constraints");
    }
    std::vector<adders::AdderCell> stages;
    stages.reserve(n);
    std::uint64_t rest = best.index;
    for (std::size_t i = 0; i < n; ++i) {
      stages.push_back(candidates[static_cast<std::size_t>(rest % k)]);
      rest /= k;
    }
    HybridDesign design = finalize(std::move(stages), profile, objective);
    design.stats.candidates_evaluated = best.evaluated;
    design.stats.candidates_rejected = best.rejected;
    design.stats.stages_computed = best.stages;
    return design;
  }

  struct BestDesign {
    double p_success = -1.0;
    std::uint64_t index = 0;  // historical stage-0-fastest design index
    bool found = false;
    std::uint64_t evaluated = 0;  // designs scored by the recursion
    std::uint64_t rejected = 0;   // designs pruned by the constraints
    std::uint64_t stages = 0;     // advance_stage calls performed
  };

  // The walk enumerates designs with stage n-1 as the *fastest* digit, so
  // consecutive designs differ only in a suffix and the shared prefix
  // stays pushed on the incremental analyzer — amortized O(1) stage
  // advances per design instead of O(N).
  const std::uint64_t grain = std::max<std::uint64_t>(1, total / 64);
  const BestDesign best = util::with_pool(threads, [&](util::ThreadPool&
                                                           pool) {
    return util::parallel_map_reduce(
        pool, 0, total, grain, BestDesign{},
        [&](std::uint64_t index_begin, std::uint64_t index_end) {
          BestDesign shard;
          std::vector<std::size_t> choice(n);
          {
            std::uint64_t rest = index_begin;
            for (std::size_t i = n; i-- > 0;) {
              choice[i] = static_cast<std::size_t>(rest % k);
              rest /= k;
            }
          }
          std::uint64_t orig_index = 0;
          std::size_t unusable_stages = 0;
          for (std::size_t i = 0; i < n; ++i) {
            orig_index += static_cast<std::uint64_t>(choice[i]) * pow_k[i];
            if (!cell_usable[choice[i]]) ++unusable_stages;
          }
          // Running budget prefix sums: *_pre[i] covers stages [0, i).
          // Rebuilt from the first changed stage on every odometer step,
          // left to right — the same summation order as a fresh per-design
          // accumulation, so rejection decisions are bit-identical to the
          // historical per-chain loop.
          std::vector<double> power_pre(n + 1, 0.0);
          std::vector<double> area_pre(n + 1, 0.0);
          const auto rebuild_budgets = [&](std::size_t from) {
            if (track_power) {
              for (std::size_t i = from; i < n; ++i) {
                power_pre[i + 1] = power_pre[i] + power_of[choice[i]];
              }
            }
            if (track_area) {
              for (std::size_t i = from; i < n; ++i) {
                area_pre[i + 1] = area_pre[i] + area_of[choice[i]];
              }
            }
          };
          rebuild_budgets(0);

          engine::IncrementalAnalyzer inc(profile);
          for (std::size_t i = 0; i + 1 < n; ++i) {
            inc.push_stage(mkls[choice[i]]);
            ++shard.stages;
          }

          for (std::uint64_t index = index_begin; index < index_end;
               ++index) {
            bool reject = unusable_stages > 0;
            if (!reject && track_power &&
                power_pre[n] > *constraints.max_power_nw) {
              reject = true;
            }
            if (!reject && track_area &&
                area_pre[n] > *constraints.max_area_ge) {
              reject = true;
            }
            if (reject) {
              ++shard.rejected;
            } else {
              ++shard.evaluated;
              const double p_success =
                  inc.final_success_with(mkls[choice[n - 1]]);
              if (!shard.found || p_success > shard.p_success ||
                  (p_success == shard.p_success &&
                   orig_index < shard.index)) {
                shard.p_success = p_success;
                shard.index = orig_index;
                shard.found = true;
              }
            }
            if (index + 1 == index_end) break;

            // Odometer step, stage n-1 fastest; `pos` ends at the most
            // significant changed stage.
            std::size_t pos = n;
            for (;;) {
              --pos;
              if (!cell_usable[choice[pos]]) --unusable_stages;
              if (choice[pos] + 1 < k) {
                ++choice[pos];
                orig_index += pow_k[pos];
                if (!cell_usable[choice[pos]]) ++unusable_stages;
                break;
              }
              choice[pos] = 0;
              orig_index -= (k - 1) * pow_k[pos];
              if (!cell_usable[choice[pos]]) ++unusable_stages;
            }
            rebuild_budgets(pos);
            if (pos + 1 < n) {
              inc.rewind(pos);
              for (std::size_t i = pos; i + 1 < n; ++i) {
                inc.push_stage(mkls[choice[i]]);
                ++shard.stages;
              }
            }
          }
          return shard;
        },
        [](BestDesign& acc, BestDesign&& shard) {
          acc.evaluated += shard.evaluated;
          acc.rejected += shard.rejected;
          acc.stages += shard.stages;
          if (shard.found &&
              (!acc.found || shard.p_success > acc.p_success ||
               (shard.p_success == acc.p_success &&
                shard.index < acc.index))) {
            acc.p_success = shard.p_success;
            acc.index = shard.index;
            acc.found = true;
          }
        });
  });

  if (!best.found) {
    throw std::runtime_error(
        "HybridOptimizer::exhaustive: no design satisfies the constraints");
  }
  std::vector<adders::AdderCell> stages;
  stages.reserve(n);
  std::uint64_t rest = best.index;
  for (std::size_t i = 0; i < n; ++i) {
    stages.push_back(candidates[static_cast<std::size_t>(rest % k)]);
    rest /= k;
  }
  HybridDesign design = finalize(std::move(stages), profile,
                                 Objective::kErrorRate);
  design.stats.candidates_evaluated = best.evaluated;
  design.stats.candidates_rejected = best.rejected;
  design.stats.stages_computed = best.stages;
  return design;
}

HybridDesign HybridOptimizer::beam(const multibit::InputProfile& profile,
                                   std::span<const adders::AdderCell> candidates,
                                   const DesignConstraints& constraints,
                                   std::size_t beam_width,
                                   Objective objective) {
  require_candidates(candidates);
  if (beam_width == 0) {
    throw std::invalid_argument("HybridOptimizer::beam: beam width 0");
  }
  const std::size_t n = profile.width();
  const bool by_pmf = objective != Objective::kErrorRate;
  SearchStats stats;

  std::vector<CellCost> costs;
  costs.reserve(candidates.size());
  for (const adders::AdderCell& cell : candidates) {
    costs.push_back(cost_of(cell));
  }

  // Size the cache for the whole search (one insertion per expansion,
  // width x beam_width x candidates in total) so the hot loop never pays
  // for an eviction; the live set per round is only beam_width x
  // candidates, but dead prefixes are cheaper to keep than to evict.
  // Capped so pathological configurations stay within tens of MB.
  engine::ChainEvaluatorOptions cache_options;
  cache_options.cache_capacity = std::clamp<std::size_t>(
      n * beam_width * (candidates.size() + 1), 4096, std::size_t{1} << 18);
  engine::ChainEvaluator evaluator(
      profile,
      std::vector<adders::AdderCell>(candidates.begin(), candidates.end()),
      cache_options);

  struct Partial {
    std::vector<std::size_t> choice;
    double power = 0.0;
    double area = 0.0;
  };
  // Expansions are scored as (parent, choice) pairs; the full choice
  // vector is only materialized for the `beam_width` survivors of each
  // round, so the 1-in-|candidates| losers never pay an allocation.
  struct Extension {
    std::size_t parent = 0;
    std::size_t choice = 0;
    double score = 0.0;  // success mass (err) or prefix PMF metric
    double power = 0.0;
    double area = 0.0;
  };

  // Partial-design score: the err objective ranks by remaining success
  // mass (maximized, the historical behaviour — carry_after probes the
  // carry prefix cache), the PMF objectives by the finalized prefix
  // PMF's metric (minimized — error_pmf probes the PMF prefix cache).
  const auto prefix_score = [&](std::span<const std::size_t> choices) {
    return by_pmf ? pmf_metric(evaluator.error_pmf(choices), objective)
                  : evaluator.carry_after(choices).success_mass();
  };
  const auto better = [by_pmf](double a, double b) {
    return by_pmf ? a < b : a > b;
  };

  std::vector<Partial> beam_set{Partial{}};
  std::vector<Extension> expanded;
  std::vector<std::size_t> scratch;
  scratch.reserve(n);
  // The err objective scores each round's whole frontier in one
  // ChainEvaluator::score_extensions SoA batch: `pending` collects the
  // constraint-surviving (parent, choice) pairs in the exact per-parent,
  // per-candidate order of the historical loop, and `parent_choices`
  // hands the evaluator the shared parent prefixes.  Scores are
  // bit-identical to the per-extension carry_after / final_success
  // calls, so the survivors (and the winner) cannot change.
  std::vector<engine::ChainEvaluator::Extension> pending;
  std::vector<std::vector<std::size_t>> parent_choices;

  bool have_best = false;
  double best_score = 0.0;
  std::vector<std::size_t> best_choice;

  for (std::size_t i = 0; i < n; ++i) {
    expanded.clear();
    expanded.reserve(beam_set.size() * candidates.size());
    if (!by_pmf) {
      pending.clear();
      parent_choices.clear();
      parent_choices.reserve(beam_set.size());
      for (const Partial& partial : beam_set) {
        parent_choices.push_back(partial.choice);
      }
    }
    for (std::size_t parent = 0; parent < beam_set.size(); ++parent) {
      const Partial& partial = beam_set[parent];
      scratch.assign(partial.choice.begin(), partial.choice.end());
      scratch.push_back(0);
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (!usable(costs[c], constraints)) {
          ++stats.candidates_rejected;
          continue;
        }
        double power = partial.power;
        double area = partial.area;
        if (constraints.max_power_nw) {
          power += *costs[c].power;
          if (power > *constraints.max_power_nw) {
            ++stats.candidates_rejected;
            continue;
          }
        }
        if (constraints.max_area_ge) {
          area += *costs[c].area;
          if (area > *constraints.max_area_ge) {
            ++stats.candidates_rejected;
            continue;
          }
        }
        ++stats.candidates_evaluated;
        if (!by_pmf) {
          pending.push_back(engine::ChainEvaluator::Extension{
              static_cast<std::uint32_t>(parent),
              static_cast<std::uint8_t>(c)});
          if (i + 1 < n) {
            expanded.push_back(Extension{parent, c, 0.0, power, area});
          }
          continue;
        }
        scratch.back() = c;
        if (i + 1 == n) {
          const double score = pmf_metric(evaluator.error_pmf(scratch),
                                          objective);
          if (!have_best || better(score, best_score)) {
            have_best = true;
            best_score = score;
            best_choice = partial.choice;
            best_choice.push_back(c);
          }
        } else {
          expanded.push_back(Extension{parent, c, prefix_score(scratch),
                                       power, area});
        }
      }
    }
    if (!by_pmf && !pending.empty()) {
      const std::vector<double> scores =
          evaluator.score_extensions(parent_choices, pending);
      if (i + 1 == n) {
        for (std::size_t e = 0; e < pending.size(); ++e) {
          if (!have_best || better(scores[e], best_score)) {
            have_best = true;
            best_score = scores[e];
            best_choice = parent_choices[pending[e].parent];
            best_choice.push_back(pending[e].choice);
          }
        }
      } else {
        for (std::size_t e = 0; e < pending.size(); ++e) {
          expanded[e].score = scores[e];
        }
      }
    }
    if (i + 1 == n) break;
    if (expanded.empty()) {
      throw std::runtime_error(
          "HybridOptimizer::beam: constraints eliminated every design");
    }
    const std::size_t keep = std::min(beam_width, expanded.size());
    std::partial_sort(expanded.begin(),
                      expanded.begin() + static_cast<std::ptrdiff_t>(keep),
                      expanded.end(),
                      [&better](const Extension& a, const Extension& b) {
                        return better(a.score, b.score);
                      });
    expanded.resize(keep);
    std::vector<Partial> survivors;
    survivors.reserve(keep);
    for (const Extension& ext : expanded) {
      Partial next;
      next.choice = beam_set[ext.parent].choice;
      next.choice.push_back(ext.choice);
      next.power = ext.power;
      next.area = ext.area;
      survivors.push_back(std::move(next));
    }
    beam_set = std::move(survivors);
  }

  if (best_choice.empty()) {
    throw std::runtime_error(
        "HybridOptimizer::beam: no design satisfies the constraints");
  }
  std::vector<adders::AdderCell> stages;
  stages.reserve(n);
  for (std::size_t c : best_choice) stages.push_back(candidates[c]);
  HybridDesign design = finalize(std::move(stages), profile, objective);
  const engine::CacheStats& cache =
      by_pmf ? evaluator.pmf_stats() : evaluator.stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.stages_computed = cache.stages_computed;
  const engine::BatchStats& batch = evaluator.batch_stats();
  stats.soa_batches = batch.batches;
  stats.soa_lanes = batch.lanes;
  stats.soa_max_lanes = batch.max_lanes;
  design.stats = stats;
  return design;
}

HybridDesign HybridOptimizer::greedy(const multibit::InputProfile& profile,
                                     std::span<const adders::AdderCell> candidates,
                                     const DesignConstraints& constraints,
                                     Objective objective) {
  return beam(profile, candidates, constraints, 1, objective);
}

}  // namespace sealpaa::explore

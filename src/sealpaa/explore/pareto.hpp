// Pareto analysis over (error probability, power, area) for homogeneous
// and hybrid multi-bit adder designs, combining the paper's Table 2
// characteristics with the recursive error analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::explore {

/// One evaluated design in the exploration space.
struct DesignPoint {
  std::string name;
  double p_error = 0.0;
  double power_nw = 0.0;
  double area_ge = 0.0;
  bool has_cost = true;  // false when the cell lacks Table 2 data
};

/// Execution accounting of one front computation, for the observability
/// layer's DSE section.
struct ParetoStats {
  std::size_t points_in = 0;         // candidates handed to the filter
  std::size_t points_with_cost = 0;  // candidates actually compared
  std::size_t front_size = 0;        // non-dominated survivors
  double seconds = 0.0;              // wall clock of the filter
};

/// Non-dominated subset: a point dominates another when it is no worse
/// in every compared dimension (error, power and — when `use_area` —
/// area) and strictly better in at least one.  Points without cost data
/// never enter the front when costs are compared.  When `stats` is
/// non-null it receives the filter accounting.
[[nodiscard]] std::vector<DesignPoint> pareto_front(
    std::vector<DesignPoint> points, bool use_area = true,
    ParetoStats* stats = nullptr);

/// Evaluates every built-in cell as an N-bit homogeneous chain under
/// `profile` and returns the design points (error from the recursive
/// analyzer, power/area scaled from Table 2).  Candidates are evaluated
/// concurrently (`threads == 0` → the shared pool) and merged back into
/// registry order, so the result does not depend on the thread count.
/// When `timings` is non-null it receives the per-candidate shard
/// breakdown of the parallel sweep.
[[nodiscard]] std::vector<DesignPoint> homogeneous_sweep(
    const multibit::InputProfile& profile, unsigned threads = 0,
    util::ShardTimings* timings = nullptr);

}  // namespace sealpaa::explore

#include "sealpaa/explore/robustness.hpp"

#include <algorithm>
#include <limits>

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/analysis/recursive.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::explore {

std::vector<RobustnessScore> four_season_ranking(std::size_t width,
                                                 double step) {
  std::vector<RobustnessScore> scores;
  for (const adders::AdderCell& cell : adders::builtin_lpaas()) {
    RobustnessScore score;
    score.cell_name = cell.name();
    score.worst_error = 0.0;
    score.best_error = std::numeric_limits<double>::infinity();
    double total = 0.0;
    int samples = 0;
    for (double p = step; p < 1.0 - step / 2.0; p += step) {
      const double error = analysis::RecursiveAnalyzer::error_probability(
          cell, multibit::InputProfile::uniform(width, p));
      score.worst_error = std::max(score.worst_error, error);
      score.best_error = std::min(score.best_error, error);
      total += error;
      ++samples;
    }
    score.mean_error = samples > 0 ? total / samples : 0.0;
    scores.push_back(std::move(score));
  }
  std::sort(scores.begin(), scores.end(),
            [](const RobustnessScore& a, const RobustnessScore& b) {
              return a.worst_error < b.worst_error;
            });
  return scores;
}

}  // namespace sealpaa::explore

// Hybrid multi-stage adder design-space exploration.
//
// The paper (§5) observes that different LPAAs win in different input-
// probability regimes (LPAA7 for mostly-0 bits, LPAA1 for mostly-1 bits,
// LPAA6 everywhere) and proposes using its fast analysis to pick a
// per-stage mix — "an optimal design of a multistage hybrid adder ...
// based on more than one type of LPAA".  This module implements that
// search: exhaustive (exact optimum, small widths), beam search (wide
// adders) and a greedy per-stage heuristic, optionally under power/area
// budgets built from the Table 2 characteristics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::explore {

/// Optional resource budgets for the search.  A candidate cell without
/// power (resp. area) data is rejected whenever the corresponding budget
/// is set.
struct DesignConstraints {
  std::optional<double> max_power_nw;
  std::optional<double> max_area_ge;
};

/// What the search minimises.
enum class Objective {
  kErrorRate,  // P(Error), the paper's stage-success event ("err")
  kMed,        // mean error distance E[|err|] via the analytic PMF
  kMse,        // mean squared error E[err^2] via the analytic PMF
};

/// Stable CLI name ("err", "med", "mse").
[[nodiscard]] std::string_view objective_name(Objective objective);
/// Parses a CLI objective name; throws std::invalid_argument listing the
/// valid names.
[[nodiscard]] Objective parse_objective(std::string_view name);

/// Execution accounting of one optimizer run — what the observability
/// layer reports for the DSE: how much of the space was scored, how much
/// the constraints pruned, and how well the engine's prefix reuse worked.
/// Wall-clock timing is *not* recorded here: call sites wrap the search
/// in an obs::ScopedTimer so DSE timings land in the run-report through
/// the same channel as every other phase.
struct SearchStats {
  /// Complete designs scored (exhaustive) or partial expansions
  /// considered (beam/greedy).
  std::uint64_t candidates_evaluated = 0;
  /// Candidates discarded by power/area constraints before scoring.
  std::uint64_t candidates_rejected = 0;
  /// Prefix-cache probes answered / missed (beam and greedy, which run
  /// on engine::ChainEvaluator; zero for the exhaustive DFS, which
  /// shares prefixes structurally instead of through a cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// advance_stage calls actually performed.  Without prefix reuse this
  /// would be ~candidates_evaluated * width; the ratio is the measured
  /// benefit of the incremental engine.
  std::uint64_t stages_computed = 0;
  /// SoA batch accounting of the err-objective beam/greedy search, which
  /// scores each frontier expansion through one
  /// engine::ChainEvaluator::score_extensions call: batch operations
  /// submitted, total lanes across them, and the widest single batch.
  /// soa_max_lanes > 1 is the run-report proof that expansion ran
  /// lane-parallel rather than extension-at-a-time.  Zero for the
  /// exhaustive DFS and the PMF-ranked objectives.
  std::uint64_t soa_batches = 0;
  std::uint64_t soa_lanes = 0;
  std::uint64_t soa_max_lanes = 0;
  /// Branch-and-bound accounting (explore/branch_bound.hpp; zero for the
  /// other optimizers).  nodes_expanded counts tree nodes whose children
  /// were generated after surviving the admissible-bound test;
  /// bound_cutoffs counts the prune events and nodes_pruned the leaves
  /// those cutoffs skipped (saturating at UINT64_MAX for astronomically
  /// large subtrees); steal_count counts successful work-steal
  /// operations between workers (always 0 single-threaded).
  std::uint64_t nodes_expanded = 0;
  std::uint64_t nodes_pruned = 0;
  std::uint64_t bound_cutoffs = 0;
  std::uint64_t steal_count = 0;
};

/// A fully evaluated hybrid design.
struct HybridDesign {
  std::vector<adders::AdderCell> stages;
  double p_error = 1.0;
  double p_success = 0.0;
  /// The objective the search ranked designs by.
  Objective objective = Objective::kErrorRate;
  /// Analytic distribution metrics of the winning design (error-PMF
  /// propagation); nullopt only when the PMF support guard tripped.
  std::optional<double> med;
  std::optional<double> mse;
  std::optional<std::int64_t> wce;
  std::optional<double> power_nw;  // nullopt when any stage lacks data
  std::optional<double> area_ge;
  SearchStats stats;  // filled by the optimizer that produced the design

  [[nodiscard]] multibit::AdderChain chain() const {
    return multibit::AdderChain(stages);
  }
};

class HybridOptimizer {
 public:
  /// Exact optimum by enumerating all |candidates|^N chains.  Guarded by
  /// `max_combinations` (std::invalid_argument beyond it).  Each shard
  /// walks its assignments as a depth-first trie over an
  /// engine::IncrementalAnalyzer, rewinding only the stages that changed
  /// between consecutive designs, so shared prefixes are advanced once —
  /// amortized O(1) stages per design instead of O(N).  Shards run
  /// concurrently on a thread pool (`threads == 0` → the shared pool);
  /// ties are broken by the lowest design index in the historical
  /// stage-0-fastest enumeration order, so the winner is independent of
  /// both the thread count and the internal walk order.
  /// With `objective` kMed/kMse each shard's DFS additionally tracks the
  /// error-PMF state per pushed stage and scores leaves on the analytic
  /// metric; exact metric ties still break to the lowest historical
  /// design index.
  [[nodiscard]] static HybridDesign exhaustive(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {},
      std::uint64_t max_combinations = 50'000'000, unsigned threads = 0,
      Objective objective = Objective::kErrorRate);

  /// Provably-optimal branch-and-bound over the same space — the
  /// *quality* mode, replacing exhaustive() as the way to get the exact
  /// optimum (same winner, bit-identical score, typically well over 10x
  /// fewer nodes) and demoting beam()/greedy() to fast preview modes.
  /// Convenience forwarder over explore::BranchBoundOptimizer::optimize
  /// with default options (beam-seeded incumbent, no checkpointing);
  /// use the optimizer directly for checkpoint/resume and suspension.
  /// Defined in branch_bound.cpp.
  [[nodiscard]] static HybridDesign branch_bound(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {},
      Objective objective = Objective::kErrorRate, unsigned threads = 0);

  /// Beam search keeping the `beam_width` best (carry-state, budget)
  /// partial designs per stage, scored by remaining success mass.
  /// NOTE: beam and greedy are *fast preview* modes — they carry no
  /// optimality guarantee; branch_bound() is the quality mode.
  /// Extensions are scored through an engine::ChainEvaluator whose LRU
  /// prefix cache serves each surviving partial's carry state in O(1),
  /// so a stage costs one advance per expansion instead of a full
  /// re-analysis of the prefix.  Each round's surviving-constraint
  /// expansions go through one ChainEvaluator::score_extensions SoA
  /// batch (bit-identical to the per-extension calls; see
  /// SearchStats::soa_batches), so the whole beam_width x |candidates|
  /// frontier advances in a single lane-parallel pass per stage.
  /// With `objective` kMed/kMse partial designs are ranked by the
  /// analytic metric of their prefix PMF instead of success mass, served
  /// from the evaluator's PMF prefix cache at the same cache-hit
  /// latency; stats then report that cache's counters.
  [[nodiscard]] static HybridDesign beam(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {}, std::size_t beam_width = 64,
      Objective objective = Objective::kErrorRate);

  /// Greedy: each stage picks the cell optimising the post-stage score
  /// (success mass, or the prefix PMF metric for kMed/kMse).  Fast
  /// baseline for the ablation bench.
  [[nodiscard]] static HybridDesign greedy(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {},
      Objective objective = Objective::kErrorRate);
};

}  // namespace sealpaa::explore

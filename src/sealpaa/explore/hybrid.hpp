// Hybrid multi-stage adder design-space exploration.
//
// The paper (§5) observes that different LPAAs win in different input-
// probability regimes (LPAA7 for mostly-0 bits, LPAA1 for mostly-1 bits,
// LPAA6 everywhere) and proposes using its fast analysis to pick a
// per-stage mix — "an optimal design of a multistage hybrid adder ...
// based on more than one type of LPAA".  This module implements that
// search: exhaustive (exact optimum, small widths), beam search (wide
// adders) and a greedy per-stage heuristic, optionally under power/area
// budgets built from the Table 2 characteristics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"

namespace sealpaa::explore {

/// Optional resource budgets for the search.  A candidate cell without
/// power (resp. area) data is rejected whenever the corresponding budget
/// is set.
struct DesignConstraints {
  std::optional<double> max_power_nw;
  std::optional<double> max_area_ge;
};

/// Execution accounting of one optimizer run — what the observability
/// layer reports for the DSE: how much of the space was scored, how much
/// the constraints pruned, and how long the search took.
struct SearchStats {
  /// Complete designs scored (exhaustive) or partial expansions
  /// considered (beam/greedy).
  std::uint64_t candidates_evaluated = 0;
  /// Candidates discarded by power/area constraints before scoring.
  std::uint64_t candidates_rejected = 0;
  double seconds = 0.0;  // wall clock of the whole search
};

/// A fully evaluated hybrid design.
struct HybridDesign {
  std::vector<adders::AdderCell> stages;
  double p_error = 1.0;
  double p_success = 0.0;
  std::optional<double> power_nw;  // nullopt when any stage lacks data
  std::optional<double> area_ge;
  SearchStats stats;  // filled by the optimizer that produced the design

  [[nodiscard]] multibit::AdderChain chain() const {
    return multibit::AdderChain(stages);
  }
};

class HybridOptimizer {
 public:
  /// Exact optimum by enumerating all |candidates|^N chains.  Guarded by
  /// `max_combinations` (std::invalid_argument beyond it).  Candidate
  /// assignments are evaluated concurrently on a thread pool
  /// (`threads == 0` → the shared pool); ties are broken by enumeration
  /// order, so the winner is independent of the thread count.
  [[nodiscard]] static HybridDesign exhaustive(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {},
      std::uint64_t max_combinations = 50'000'000, unsigned threads = 0);

  /// Beam search keeping the `beam_width` best (carry-state, budget)
  /// partial designs per stage, scored by remaining success mass.
  [[nodiscard]] static HybridDesign beam(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {}, std::size_t beam_width = 64);

  /// Greedy: each stage picks the cell maximising the post-stage success
  /// mass.  Fast baseline for the ablation bench.
  [[nodiscard]] static HybridDesign greedy(
      const multibit::InputProfile& profile,
      std::span<const adders::AdderCell> candidates,
      const DesignConstraints& constraints = {});
};

}  // namespace sealpaa::explore

#include "sealpaa/explore/pareto.hpp"

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::explore {

namespace {

bool dominates(const DesignPoint& a, const DesignPoint& b, bool use_area) {
  if (a.p_error > b.p_error) return false;
  if (a.power_nw > b.power_nw) return false;
  if (use_area && a.area_ge > b.area_ge) return false;
  const bool strictly =
      a.p_error < b.p_error || a.power_nw < b.power_nw ||
      (use_area && a.area_ge < b.area_ge);
  return strictly;
}

}  // namespace

std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points,
                                      bool use_area, ParetoStats* stats) {
  util::WallTimer timer;
  std::vector<DesignPoint> front;
  std::size_t with_cost = 0;
  for (const DesignPoint& candidate : points) {
    if (!candidate.has_cost) continue;
    ++with_cost;
    bool dominated = false;
    for (const DesignPoint& other : points) {
      if (!other.has_cost) continue;
      if (&other != &candidate && dominates(other, candidate, use_area)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  if (stats != nullptr) {
    stats->points_in = points.size();
    stats->points_with_cost = with_cost;
    stats->front_size = front.size();
    stats->seconds = timer.elapsed_seconds();
  }
  return front;
}

std::vector<DesignPoint> homogeneous_sweep(
    const multibit::InputProfile& profile, unsigned threads,
    util::ShardTimings* timings) {
  (void)threads;  // kept for API stability; the batch kernel is SoA-parallel
  const std::span<const adders::AdderCell> cells = adders::all_builtin_cells();
  const double n = static_cast<double>(profile.width());
  util::WallTimer timer;
  // One engine::evaluate_batch call over all homogeneous chains: the
  // registry's distinct cells form one SoA palette and every chain
  // advances lane-parallel in a single strict pass, replacing the old
  // per-cell evaluate() fan-out.  Element i is bit-identical to
  // evaluate(cells[i], profile, kRecursive), and the output keeps
  // registry order by construction.
  std::vector<multibit::AdderChain> chains;
  chains.reserve(cells.size());
  for (const adders::AdderCell& cell : cells) {
    chains.emplace_back(
        std::vector<adders::AdderCell>(profile.width(), cell));
  }
  const std::vector<engine::Evaluation> evaluations =
      engine::evaluate_batch(chains, profile, engine::Method::kRecursive);
  std::vector<DesignPoint> points;
  points.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const adders::AdderCell& cell = cells[i];
    DesignPoint point;
    point.name = cell.name();
    point.p_error = evaluations[i].p_error;
    const adders::CellCharacteristics* row =
        adders::find_characteristics(cell);
    if (row != nullptr && row->power_nw && row->area_ge) {
      point.power_nw = *row->power_nw * n;
      point.area_ge = *row->area_ge * n;
    } else {
      point.has_cost = false;
    }
    points.push_back(std::move(point));
  }
  if (timings != nullptr) {
    // The sweep is one batched pass, not a fork/join region: report a
    // single shard covering the whole registry.
    timings->threads = 1;
    timings->wall_seconds = timer.elapsed_seconds();
    timings->shards = {util::ShardTiming{
        0, static_cast<std::uint64_t>(cells.size()),
        timings->wall_seconds}};
  }
  return points;
}

}  // namespace sealpaa::explore

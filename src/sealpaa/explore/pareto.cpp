#include "sealpaa/explore/pareto.hpp"

#include "sealpaa/adders/builtin.hpp"
#include "sealpaa/adders/characteristics.hpp"
#include "sealpaa/engine/method.hpp"
#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::explore {

namespace {

bool dominates(const DesignPoint& a, const DesignPoint& b, bool use_area) {
  if (a.p_error > b.p_error) return false;
  if (a.power_nw > b.power_nw) return false;
  if (use_area && a.area_ge > b.area_ge) return false;
  const bool strictly =
      a.p_error < b.p_error || a.power_nw < b.power_nw ||
      (use_area && a.area_ge < b.area_ge);
  return strictly;
}

}  // namespace

std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points,
                                      bool use_area, ParetoStats* stats) {
  util::WallTimer timer;
  std::vector<DesignPoint> front;
  std::size_t with_cost = 0;
  for (const DesignPoint& candidate : points) {
    if (!candidate.has_cost) continue;
    ++with_cost;
    bool dominated = false;
    for (const DesignPoint& other : points) {
      if (!other.has_cost) continue;
      if (&other != &candidate && dominates(other, candidate, use_area)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  if (stats != nullptr) {
    stats->points_in = points.size();
    stats->points_with_cost = with_cost;
    stats->front_size = front.size();
    stats->seconds = timer.elapsed_seconds();
  }
  return front;
}

std::vector<DesignPoint> homogeneous_sweep(
    const multibit::InputProfile& profile, unsigned threads,
    util::ShardTimings* timings) {
  const std::span<const adders::AdderCell> cells = adders::all_builtin_cells();
  const double n = static_cast<double>(profile.width());
  // Candidates are analyzed concurrently; the ordered reduction appends
  // the per-cell points in registry order, so the output is identical to
  // a sequential sweep regardless of thread count.
  return util::with_pool(threads, [&](util::ThreadPool& pool) {
    return util::parallel_map_reduce(
        pool, 0, cells.size(), 1, std::vector<DesignPoint>{},
        [&](std::uint64_t index, std::uint64_t) {
          const adders::AdderCell& cell =
              cells[static_cast<std::size_t>(index)];
          DesignPoint point;
          point.name = cell.name();
          point.p_error =
              engine::evaluate(cell, profile, engine::Method::kRecursive)
                  .p_error;
          const adders::CellCharacteristics* row =
              adders::find_characteristics(cell);
          if (row != nullptr && row->power_nw && row->area_ge) {
            point.power_nw = *row->power_nw * n;
            point.area_ge = *row->area_ge * n;
          } else {
            point.has_cost = false;
          }
          return point;
        },
        [](std::vector<DesignPoint>& acc, DesignPoint&& point) {
          acc.push_back(std::move(point));
        },
        timings);
  });
}

}  // namespace sealpaa::explore

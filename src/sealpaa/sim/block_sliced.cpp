#include "sealpaa/sim/block_sliced.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sealpaa/sim/bitsliced.hpp"

namespace sealpaa::sim {

BlockSlicedKernel::BlockSlicedKernel(multibit::BlockChainSpec spec)
    : spec_(std::move(spec)) {}

BlockSlicedKernel::Result BlockSlicedKernel::run_packed(
    const std::uint64_t* a_words, const std::uint64_t* b_words,
    std::uint64_t cin_word, std::uint64_t lane_mask) const noexcept {
  const int n = spec_.n();
  // Rows 0..n-1 hold the sum bits, row n the carry-out; rows above stay
  // zero so the plane transpose yields the numeric value() per lane.
  std::array<std::uint64_t, 64> approx_plane{};
  std::array<std::uint64_t, 64> exact_plane{};

  std::uint64_t carry = cin_word;
  for (int j = 0; j < n; ++j) {
    const std::uint64_t a = a_words[j];
    const std::uint64_t b = b_words[j];
    exact_plane[static_cast<std::size_t>(j)] = a ^ b ^ carry;
    carry = (a & b) | (carry & (a | b));
  }
  exact_plane[static_cast<std::size_t>(n)] = carry;

  for (int i = 0; i < spec_.block_count(); ++i) {
    const int first_result = spec_.result_start(i);
    const int end = spec_.result_end(i);
    carry = i == 0 ? cin_word : 0;
    for (int j = spec_.window_start(i); j < end; ++j) {
      const std::uint64_t a = a_words[j];
      const std::uint64_t b = b_words[j];
      if (j >= first_result) {
        approx_plane[static_cast<std::size_t>(j)] = a ^ b ^ carry;
      }
      carry = (a & b) | (carry & (a | b));
    }
    if (i + 1 == spec_.block_count()) {
      approx_plane[static_cast<std::size_t>(n)] = carry;
    }
  }

  std::uint64_t diff = 0;
  for (int j = 0; j <= n; ++j) {
    diff |= approx_plane[static_cast<std::size_t>(j)] ^
            exact_plane[static_cast<std::size_t>(j)];
  }

  Result result;
  result.lane_mask = lane_mask;
  result.value_error_mask = diff & lane_mask;
  detail::finalize_errors(approx_plane, exact_plane, result.value_error_mask,
                          result.error);
  return result;
}

BlockSlicedKernel::Result BlockSlicedKernel::run(
    const std::uint64_t* a_lanes, const std::uint64_t* b_lanes,
    std::uint64_t cin_word, std::uint64_t lane_mask) const noexcept {
  std::array<std::uint64_t, 64> a_words;
  std::array<std::uint64_t, 64> b_words;
  std::copy(a_lanes, a_lanes + 64, a_words.begin());
  std::copy(b_lanes, b_lanes + 64, b_words.begin());
  transpose64_fast(a_words);
  transpose64_fast(b_words);
  return run_packed(a_words.data(), b_words.data(), cin_word, lane_mask);
}

ErrorMetrics block_monte_carlo(const multibit::BlockChainSpec& spec,
                               const multibit::InputProfile& profile,
                               std::uint64_t samples, std::uint64_t seed) {
  if (static_cast<int>(profile.width()) != spec.n()) {
    throw std::invalid_argument(
        "block_monte_carlo: profile width must equal the block-adder width");
  }
  const BlockSlicedKernel kernel(spec);
  prob::Xoshiro256StarStar rng(seed);
  ErrorMetrics metrics;
  std::uint64_t remaining = samples;
  std::array<std::uint64_t, 64> a_lanes;
  std::array<std::uint64_t, 64> b_lanes;
  while (remaining > 0) {
    const std::uint64_t lanes = std::min<std::uint64_t>(remaining, 64);
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ULL : (1ULL << lanes) - 1ULL;
    std::uint64_t cin_word = 0;
    for (std::uint64_t l = 0; l < lanes; ++l) {
      const auto sample = profile.sample(rng);
      a_lanes[l] = sample.a;
      b_lanes[l] = sample.b;
      if (sample.cin) cin_word |= 1ULL << l;
    }
    for (std::uint64_t l = lanes; l < 64; ++l) a_lanes[l] = b_lanes[l] = 0;
    accumulate(metrics,
               kernel.run(a_lanes.data(), b_lanes.data(), cin_word,
                          lane_mask));
    remaining -= lanes;
  }
  return metrics;
}

ErrorMetrics block_exhaustive(const multibit::BlockChainSpec& spec,
                              std::size_t max_width) {
  const int n = spec.n();
  if (static_cast<std::size_t>(n) > max_width) {
    throw std::invalid_argument("block_exhaustive: width " +
                                std::to_string(n) +
                                " exceeds the sweep guard " +
                                std::to_string(max_width));
  }
  const BlockSlicedKernel kernel(spec);
  ErrorMetrics metrics;
  const std::uint64_t limit = 1ULL << n;
  const int lane_bits = std::min(n, 6);
  const std::uint64_t lanes_used = 1ULL << lane_bits;
  const std::uint64_t lane_mask =
      lanes_used == 64 ? ~0ULL : (1ULL << lanes_used) - 1ULL;

  std::array<std::uint64_t, 64> a_words;
  std::array<std::uint64_t, 64> b_words;
  a_words.fill(0);
  b_words.fill(0);
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (int i = 0; i < n; ++i) {
      a_words[static_cast<std::size_t>(i)] =
          ((a >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
    }
    for (std::uint64_t b_high = 0; b_high < (limit >> lane_bits); ++b_high) {
      for (int i = 0; i < n; ++i) {
        b_words[static_cast<std::size_t>(i)] =
            i < lane_bits
                ? kLaneCounterBit[static_cast<std::size_t>(i)]
                : (((b_high >> (i - lane_bits)) & 1ULL) != 0 ? ~0ULL : 0ULL);
      }
      accumulate(metrics,
                 kernel.run_packed(a_words.data(), b_words.data(), 0,
                                   lane_mask));
    }
  }
  return metrics;
}

}  // namespace sealpaa::sim

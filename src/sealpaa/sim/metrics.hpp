// Error-quality metrics shared by the exhaustive and Monte Carlo
// simulators: error rate, mean error distance (MED), mean squared error,
// worst-case error — the standard approximate-computing quality measures.
#pragma once

#include <cstdint>

namespace sealpaa::sim {

/// Streaming accumulator over (approximate, exact) result pairs.
class ErrorMetrics {
 public:
  /// Records one evaluated case.  `stage_success` is the paper's
  /// per-stage success event for the same case.
  void add(std::uint64_t approx_value, std::uint64_t exact_value,
           bool stage_success) noexcept;

  [[nodiscard]] std::uint64_t cases() const noexcept { return cases_; }
  [[nodiscard]] std::uint64_t value_errors() const noexcept {
    return value_errors_;
  }
  [[nodiscard]] std::uint64_t stage_failures() const noexcept {
    return stage_failures_;
  }

  /// Fraction of cases whose numeric output differed from exact.
  [[nodiscard]] double error_rate() const noexcept;
  /// Fraction of cases where some stage deviated from the accurate FA
  /// (the paper's P(Error)).
  [[nodiscard]] double stage_failure_rate() const noexcept;
  /// Mean signed error E[approx - exact].
  [[nodiscard]] double mean_error() const noexcept;
  /// Mean error distance E[|approx - exact|].
  [[nodiscard]] double mean_abs_error() const noexcept;
  /// Mean squared error E[(approx - exact)^2].
  [[nodiscard]] double mean_squared_error() const noexcept;
  /// Largest |approx - exact| seen (signed value preserved).
  [[nodiscard]] std::int64_t worst_case_error() const noexcept {
    return worst_case_;
  }

  /// Merges another accumulator (for sharded simulation).
  void merge(const ErrorMetrics& other) noexcept;

 private:
  std::uint64_t cases_ = 0;
  std::uint64_t value_errors_ = 0;
  std::uint64_t stage_failures_ = 0;
  double sum_error_ = 0.0;
  double sum_abs_error_ = 0.0;
  double sum_sq_error_ = 0.0;
  std::int64_t worst_case_ = 0;
};

}  // namespace sealpaa::sim

// Error-quality metrics shared by the exhaustive and Monte Carlo
// simulators: error rate, mean error distance (MED), mean squared error,
// worst-case error — the standard approximate-computing quality measures.
#pragma once

#include <array>
#include <cstdint>

namespace sealpaa::sim {

/// |error| computed in the unsigned domain — well-defined for INT64_MIN,
/// where std::llabs / negation in std::int64_t is undefined behaviour.
[[nodiscard]] constexpr std::uint64_t error_magnitude(
    std::int64_t error) noexcept {
  const auto u = static_cast<std::uint64_t>(error);
  return error < 0 ? 0ULL - u : u;
}

/// Total order "a is a worse error than b": larger magnitude wins; equal
/// magnitudes tie-break to the negative error.  Every worst-case tracker
/// (sim metrics, the weighted-exhaustive oracle) uses this comparator so
/// the reported worst case is a function of the evaluated *set* of cases
/// only — never of evaluation or shard-merge order.
[[nodiscard]] constexpr bool worse_error(std::int64_t a,
                                         std::int64_t b) noexcept {
  const std::uint64_t ma = error_magnitude(a);
  const std::uint64_t mb = error_magnitude(b);
  if (ma != mb) return ma > mb;
  return a < b;
}

/// Streaming accumulator over (approximate, exact) result pairs.
class ErrorMetrics {
 public:
  /// Records one evaluated case.  `stage_success` is the paper's
  /// per-stage success event for the same case.
  void add(std::uint64_t approx_value, std::uint64_t exact_value,
           bool stage_success) noexcept;

  /// Records one 64-lane batch from the bit-sliced kernel: `lane_mask`
  /// marks the valid lanes, `value_error_mask` / `stage_fail_mask` the
  /// lanes with a numeric / stage-level error, and `error[l]` the signed
  /// error of lane l (zero outside value_error_mask).  Counts come from
  /// popcounts and the floating-point moments fold only the erroneous
  /// lanes in ascending order — bit-identical to calling add() once per
  /// valid lane, since adding a zero error is an exact no-op.
  void add_batch(std::uint64_t lane_mask, std::uint64_t value_error_mask,
                 std::uint64_t stage_fail_mask,
                 const std::array<std::int64_t, 64>& error) noexcept;

  [[nodiscard]] std::uint64_t cases() const noexcept { return cases_; }
  [[nodiscard]] std::uint64_t value_errors() const noexcept {
    return value_errors_;
  }
  [[nodiscard]] std::uint64_t stage_failures() const noexcept {
    return stage_failures_;
  }

  /// Fraction of cases whose numeric output differed from exact.
  [[nodiscard]] double error_rate() const noexcept;
  /// Fraction of cases where some stage deviated from the accurate FA
  /// (the paper's P(Error)).
  [[nodiscard]] double stage_failure_rate() const noexcept;
  /// Mean signed error E[approx - exact].
  [[nodiscard]] double mean_error() const noexcept;
  /// Mean error distance E[|approx - exact|].
  [[nodiscard]] double mean_abs_error() const noexcept;
  /// Mean squared error E[(approx - exact)^2].
  [[nodiscard]] double mean_squared_error() const noexcept;
  /// Largest |approx - exact| seen (signed value preserved).  Ties in
  /// magnitude between opposite signs resolve to the negative error, so
  /// the reported worst case is a deterministic function of the *set* of
  /// evaluated cases — independent of evaluation or shard-merge order.
  /// The magnitude comparison is done in unsigned arithmetic, so
  /// INT64_MIN (whose absolute value overflows std::int64_t) is handled
  /// without undefined behaviour.
  [[nodiscard]] std::int64_t worst_case_error() const noexcept {
    return worst_case_;
  }

  /// Merges another accumulator (for sharded simulation).  merge is
  /// associative and commutative with the default-constructed metrics as
  /// identity, which is what makes the ordered parallel reduction
  /// thread-count-invariant.
  void merge(const ErrorMetrics& other) noexcept;

 private:
  std::uint64_t cases_ = 0;
  std::uint64_t value_errors_ = 0;
  std::uint64_t stage_failures_ = 0;
  double sum_error_ = 0.0;
  double sum_abs_error_ = 0.0;
  double sum_sq_error_ = 0.0;
  std::int64_t worst_case_ = 0;
};

}  // namespace sealpaa::sim

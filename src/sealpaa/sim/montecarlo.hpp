// Monte Carlo simulation with per-bit input probabilities — the paper's
// oracle for the "Not Equally Probable / Infinite" row of Table 6 and the
// Sim. columns of Table 7 (1 million cases per configuration).
#pragma once

#include <cstdint>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/stats.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::sim {

/// Monte Carlo outcome with sampling-uncertainty quantification.
struct MonteCarloReport {
  ErrorMetrics metrics;
  std::uint64_t samples = 0;
  double seconds = 0.0;
  Kernel kernel = Kernel::kBitSliced;  // evaluation backend used
  std::uint64_t lane_batches = 0;      // 64-lane kernel passes (bit-sliced)
  std::uint64_t masked_lanes = 0;      // dead lanes in remainder batches
  util::ShardTimings shard_timings;    // filled by run_parallel only

  /// Wilson 95% interval for the stage-failure rate (the paper's P(E)).
  /// Empty (see prob::Interval::empty) until samples have been drawn.
  prob::Interval stage_failure_ci = prob::Interval::empty_interval();
  /// Wilson 95% interval for the value-level error rate.
  prob::Interval value_error_ci = prob::Interval::empty_interval();
};

class MonteCarloSimulator {
 public:
  /// Draws `samples` independent input assignments from `profile` and
  /// evaluates `chain` against the exact adder.  Deterministic for a
  /// given `seed`; the kernel choice never changes the metrics, only the
  /// throughput (samples are drawn in the same order and the bit-sliced
  /// evaluation is bit-identical to the scalar walk).
  [[nodiscard]] static MonteCarloReport run(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile, std::uint64_t samples,
      std::uint64_t seed = 0x5ea1'c0de'2017'dacULL,
      Kernel kernel = Kernel::kBitSliced);

  /// Sharded variant: splits the samples into fixed 2^16-sample shards,
  /// each on an independent Xoshiro stream (jump() guarantees
  /// disjointness), executed on a thread pool of `threads` workers and
  /// merged in shard order.  Because the shard layout depends only on
  /// `samples`, the report is bit-identical for every thread count —
  /// deterministic for a given (seed, samples) pair.
  [[nodiscard]] static MonteCarloReport run_parallel(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile, std::uint64_t samples,
      unsigned threads, std::uint64_t seed = 0x5ea1'c0de'2017'dacULL,
      Kernel kernel = Kernel::kBitSliced);
};

}  // namespace sealpaa::sim

// Bit-sliced (64-lane) evaluation of block-based approximate adders —
// the cross-validation oracle for analysis::BlockErrorModel at widths
// where exhaustive enumeration is out of reach.
//
// Same transposed data layout as BitSlicedKernel: lane word `W` holds
// one boolean signal across 64 input vectors.  Block sub-adders are
// exact ripple adders, so each bit step is just XOR3 / MAJ3 on lane
// words; the kernel ripples the exact reference carry and every block's
// windowed carry in lockstep and reuses the shared SIMD-dispatched
// transpose / error-finalization primitives from bitsliced.hpp.
// Results are bit-identical to 64 scalar BlockAdder::evaluate calls —
// the scalar model stays the reference oracle and the differential
// suite enforces the identity.
#pragma once

#include <array>
#include <cstdint>

#include "sealpaa/multibit/blocks.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace sealpaa::sim {

/// Evaluates a BlockChainSpec on 64 packed input vectors per pass.
class BlockSlicedKernel {
 public:
  explicit BlockSlicedKernel(multibit::BlockChainSpec spec);

  [[nodiscard]] const multibit::BlockChainSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] std::size_t width() const noexcept {
    return static_cast<std::size_t>(spec_.n());
  }

  /// Outcome of one 64-lane batch.  Only lanes in `lane_mask` carry
  /// data; masked lanes report no error.
  struct Result {
    std::uint64_t lane_mask = 0;
    /// Numeric output (sum bits plus carry-out) differs from exact.
    std::uint64_t value_error_mask = 0;
    /// Signed error approx - exact per lane; zero outside
    /// value_error_mask.  Written by run / run_packed, not the
    /// constructor.
    std::array<std::int64_t, 64> error;
  };

  /// Evaluates 64 packed vectors: `a_words[i]` / `b_words[i]` hold bit i
  /// of operand a / b across all lanes, `cin_word` the input carries.
  [[nodiscard]] Result run_packed(const std::uint64_t* a_words,
                                  const std::uint64_t* b_words,
                                  std::uint64_t cin_word,
                                  std::uint64_t lane_mask) const noexcept;

  /// Convenience entry for per-lane operands: transposes `a_lanes` /
  /// `b_lanes` (64 values each, bits above width() ignored) into lane
  /// words, then runs the packed kernel.
  [[nodiscard]] Result run(const std::uint64_t* a_lanes,
                           const std::uint64_t* b_lanes,
                           std::uint64_t cin_word,
                           std::uint64_t lane_mask) const noexcept;

 private:
  multibit::BlockChainSpec spec_;
};

/// Folds one batch into a metrics accumulator.  Block sub-adders are
/// exact, so the stage-level and value-level error events coincide and
/// `value_error_mask` feeds both counters.
inline void accumulate(ErrorMetrics& metrics,
                       const BlockSlicedKernel::Result& result) noexcept {
  metrics.add_batch(result.lane_mask, result.value_error_mask,
                    result.value_error_mask, result.error);
}

/// Profile-sampled Monte Carlo sweep on the bit-sliced kernel
/// (`samples` rounded up to full 64-lane batches).  Deterministic for a
/// fixed seed.
[[nodiscard]] ErrorMetrics block_monte_carlo(
    const multibit::BlockChainSpec& spec,
    const multibit::InputProfile& profile, std::uint64_t samples,
    std::uint64_t seed);

/// Exhaustive uniform-input sweep over all 2^(2N) pairs (cin = 0) on
/// the bit-sliced kernel; guarded at `max_width` bits.
[[nodiscard]] ErrorMetrics block_exhaustive(
    const multibit::BlockChainSpec& spec, std::size_t max_width = 13);

}  // namespace sealpaa::sim

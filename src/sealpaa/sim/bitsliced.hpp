// Bit-sliced (64-lane) chain evaluation — the transposed-data-layout
// trick of gate-level logic and fault simulators applied to the ripple
// chain.  One pass over the stages processes 64 input vectors at once:
// lane word `W` holds one boolean signal for all 64 vectors (bit `l` of
// `W` is the signal in lane `l`), and every stage becomes a handful of
// plain uint64 boolean operations instead of 64 scalar truth-table
// lookups.
//
// Each AdderCell's 8-row truth table is compiled once into a minimized
// sum-of-products expression over the three lane words (A, B, Cin); the
// kernel then ripples the approximate carry, the *exact* reference carry
// and the paper's per-stage success event through the chain in lockstep,
// so error probability, first-failed-stage and signed error magnitudes
// all come out lane-parallel.  Results are bit-identical to the scalar
// AdderChain::evaluate_traced / exact_add path — the scalar evaluator
// stays the reference oracle and the differential suite enforces
// equality.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace sealpaa::sim {

/// Lane-word constants for counter-patterned inputs: bit `l` of
/// `kLaneCounterBit[k]` is bit `k` of the lane index `l`.  The exhaustive
/// sweep uses these to materialize 64 consecutive (b, cin) cases without
/// any transpose (cin toggles fastest, so cin = kLaneCounterBit[0] and
/// bit i of b is kLaneCounterBit[i + 1] for the low bits).
inline constexpr std::array<std::uint64_t, 6> kLaneCounterBit = {
    0xAAAA'AAAA'AAAA'AAAAULL, 0xCCCC'CCCC'CCCC'CCCCULL,
    0xF0F0'F0F0'F0F0'F0F0ULL, 0xFF00'FF00'FF00'FF00ULL,
    0xFFFF'0000'FFFF'0000ULL, 0xFFFF'FFFF'0000'0000ULL,
};

/// A 3-input boolean function compiled from an 8-bit truth table (bit r
/// of `truth` is the output for row r = (a<<2)|(b<<1)|cin, the paper's
/// Table 1 row order) into a form evaluable on 64-bit lane words.
/// Constant, single-literal, two-input parity, three-input parity and
/// majority tables get dedicated forms (the approximate cells are full of
/// wire-only and pass-through columns — LPAA5 is literally Sum = B,
/// Cout = A); everything else becomes a minimal sum-of-products found by
/// exhaustive prime-implicant cover (trivial at 3 variables).
struct SlicedLut {
  enum class Kind : std::uint8_t {
    kConstFalse,  // truth 0x00
    kConstTrue,   // truth 0xFF
    kA,           // truth 0xF0 (pass-through / wire columns)
    kB,           // truth 0xCC
    kC,           // truth 0xAA
    kNotA,        // truth 0x0F
    kNotB,        // truth 0x33
    kNotC,        // truth 0x55
    kXorAB,       // truth 0x3C
    kXnorAB,      // truth 0xC3
    kXorAC,       // truth 0x5A
    kXnorAC,      // truth 0xA5
    kXorBC,       // truth 0x66
    kXnorBC,      // truth 0x99
    kXor3,        // A ^ B ^ C        (accurate sum)
    kXnor3,       // ~(A ^ B ^ C)
    kMaj3,        // (A&B)|(C&(A|B))  (accurate carry)
    kSop,         // OR of product terms
  };

  /// One product term, branch-free: a variable contributes
  /// `(W ^ flip) | ignore` — W itself (flip=0, ignore=0), its complement
  /// (flip=~0, ignore=0) or all-ones when absent from the term
  /// (ignore=~0).
  struct Term {
    std::uint64_t flip_a = 0, ignore_a = 0;
    std::uint64_t flip_b = 0, ignore_b = 0;
    std::uint64_t flip_c = 0, ignore_c = 0;
  };

  Kind kind = Kind::kConstFalse;
  std::uint8_t term_count = 0;
  std::array<Term, 8> terms{};  // minimal SOP of 3 vars needs at most 4

  /// Evaluates the function on three lane words.
  [[nodiscard]] std::uint64_t eval(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) const noexcept {
    switch (kind) {
      case Kind::kConstFalse:
        return 0;
      case Kind::kConstTrue:
        return ~0ULL;
      case Kind::kA:
        return a;
      case Kind::kB:
        return b;
      case Kind::kC:
        return c;
      case Kind::kNotA:
        return ~a;
      case Kind::kNotB:
        return ~b;
      case Kind::kNotC:
        return ~c;
      case Kind::kXorAB:
        return a ^ b;
      case Kind::kXnorAB:
        return ~(a ^ b);
      case Kind::kXorAC:
        return a ^ c;
      case Kind::kXnorAC:
        return ~(a ^ c);
      case Kind::kXorBC:
        return b ^ c;
      case Kind::kXnorBC:
        return ~(b ^ c);
      case Kind::kXor3:
        return a ^ b ^ c;
      case Kind::kXnor3:
        return ~(a ^ b ^ c);
      case Kind::kMaj3:
        return (a & b) | (c & (a | b));
      case Kind::kSop:
        break;
    }
    std::uint64_t out = 0;
    for (std::uint8_t t = 0; t < term_count; ++t) {
      const Term& term = terms[t];
      out |= ((a ^ term.flip_a) | term.ignore_a) &
             ((b ^ term.flip_b) | term.ignore_b) &
             ((c ^ term.flip_c) | term.ignore_c);
    }
    return out;
  }
};

/// Compiles an 8-bit truth table into its minimized lane-word form.
[[nodiscard]] SlicedLut compile_lut(std::uint8_t truth);

/// In-place 64x64 bit-matrix transpose: bit i of output row l equals bit
/// l of input row i.  Used to pack 64 per-lane operands into per-bit lane
/// words (and exposed for tests).  This is the portable reference
/// implementation (Hacker's Delight block swaps).
void transpose64(std::array<std::uint64_t, 64>& m) noexcept;

/// Same contract as transpose64, but dispatched at runtime to an
/// AVX-512 + GFNI kernel when the CPU has one (a byte-gather shuffle
/// network plus one 8x8 bit transpose per block via GF2P8AFFINEQB);
/// falls back to transpose64 otherwise.  Both implementations are pure
/// bit permutations, so the dispatch never affects results.
void transpose64_fast(std::array<std::uint64_t, 64>& m) noexcept;

/// True when transpose64_fast runs the SIMD kernel on this machine.
[[nodiscard]] bool transpose64_accelerated() noexcept;

namespace detail {

/// Raw 8-bit truth tables of one stage, in the paper's Table 1 row order
/// (bit r is the output for row r = (a<<2)|(b<<1)|cin).  The grouped
/// AVX-512 kernel consumes these directly: the row order matches the
/// VPTERNLOGQ immediate's bit indexing, so every table — wire, parity,
/// majority or arbitrary — evaluates in a single instruction there.
struct StageTruth {
  std::uint8_t sum = 0;
  std::uint8_t carry = 0;
  std::uint8_t success = 0;
};

/// first_failed[l] = index of the first stage whose failure mask has bit
/// l set, -1 when none does.  `failed_masks[i]` is stage i's
/// newly-failed lane mask; the masks are disjoint by construction (a
/// lane fails at most once).  Dispatches to an AVX-512BW masked-blend
/// loop (one blend per stage) when available, else scatters bit by bit.
void scatter_first_failed(const std::uint64_t* failed_masks, std::size_t n,
                          std::array<std::int8_t, 64>& first_failed) noexcept;

/// Transposes the two value planes in place (rows = bits, one word per
/// bit) and writes every lane of `error`: int64(approx[l] - exact[l])
/// for lanes in `value_error_mask`, zero for all others.  The uint64
/// subtraction wraps exactly like the scalar int64(approx) -
/// int64(exact).  Dispatches to masked AVX-512 subtracts after a fused
/// two-plane SIMD transpose when available.
void finalize_errors(std::array<std::uint64_t, 64>& approx,
                     std::array<std::uint64_t, 64>& exact,
                     std::uint64_t value_error_mask,
                     std::array<std::int64_t, 64>& error) noexcept;

}  // namespace detail

/// Evaluates an AdderChain on 64 packed input vectors per pass.
class BitSlicedKernel {
 public:
  /// Compiles every stage's sum / carry-out / success truth tables.  The
  /// chain width is bounded at 63 bits by AdderChain itself, so the
  /// carry-out always fits bit `width()` of a lane value.
  explicit BitSlicedKernel(const multibit::AdderChain& chain);

  [[nodiscard]] std::size_t width() const noexcept { return stages_.size(); }

  /// Outcome of one 64-lane batch.  Only lanes in `lane_mask` carry data;
  /// masked lanes report no error and first_failed = -1.
  struct Result {
    std::uint64_t lane_mask = 0;
    /// Paper success event failed (some stage deviated from the accurate
    /// FA on its actual inputs).
    std::uint64_t stage_fail_mask = 0;
    /// Numeric output (sum bits plus carry-out) differs from exact.
    std::uint64_t value_error_mask = 0;
    /// Sum bits differ from exact (carry-out ignored).
    std::uint64_t sum_bits_error_mask = 0;
    /// Signed error approx - exact per lane (same wraparound semantics
    /// as the scalar int64 subtraction); zero outside value_error_mask.
    /// Not initialized by the default constructor — run / run_packed
    /// write every lane before returning.
    std::array<std::int64_t, 64> error;
    /// First stage whose outputs deviated from the accurate FA; -1 when
    /// every stage succeeded (TracedAddResult::first_failed_stage).
    /// Like `error`, written by run / run_packed, not the constructor.
    std::array<std::int8_t, 64> first_failed;
  };

  /// Evaluates 64 packed vectors: `a_words[i]` / `b_words[i]` hold bit i
  /// of operand a / b across all lanes, `cin_word` the input carries.
  [[nodiscard]] Result run_packed(const std::uint64_t* a_words,
                                  const std::uint64_t* b_words,
                                  std::uint64_t cin_word,
                                  std::uint64_t lane_mask) const noexcept;

  /// Convenience entry for per-lane operands (Monte Carlo sampling):
  /// transposes `a_lanes` / `b_lanes` (64 values each, bits above
  /// width() ignored) into lane words, then runs the packed kernel.
  [[nodiscard]] Result run(const std::uint64_t* a_lanes,
                           const std::uint64_t* b_lanes,
                           std::uint64_t cin_word,
                           std::uint64_t lane_mask) const noexcept;

  /// Batches evaluated together by run_packed_group.
  static constexpr std::size_t kGroupBatches = 8;

  /// Evaluates kGroupBatches full batches (512 vectors) that share the
  /// same `a_words` and `cin_word` — the shape of the exhaustive sweep's
  /// inner loop, where only the high bits of b change between
  /// consecutive batches.  `b_group` is stage-major: b_group[8*i + j]
  /// holds bit i of batch j's b operand.  Every batch uses the full lane
  /// mask; results[j] is bit-identical to run_packed on batch j alone.
  ///
  /// On AVX-512 hardware the whole group ripples in zmm registers, one
  /// VPTERNLOGQ per truth table per stage for all 512 lanes — this is
  /// where LUT evaluation and dispatch cost stop mattering; elsewhere it
  /// decays to kGroupBatches run_packed calls.
  void run_packed_group(const std::uint64_t* a_words,
                        const std::uint64_t* b_group, std::uint64_t cin_word,
                        Result* results) const noexcept;

 private:
  struct Stage {
    SlicedLut sum;
    SlicedLut carry;
    SlicedLut success;
  };
  std::vector<Stage> stages_;
  std::vector<detail::StageTruth> truths_;
};

namespace detail {

/// AVX-512 implementation behind run_packed_group: the stage loop runs
/// on 512-bit words (8 batches side by side), each truth table applied
/// with a single VPTERNLOGQ whose immediate IS the table.  Defined as an
/// unreachable stub on builds without the x86 kernels —
/// transpose64_accelerated() gates every call.
void run_packed_group_zmm(const StageTruth* truths, std::size_t n,
                          const std::uint64_t* a_words,
                          const std::uint64_t* b_group,
                          std::uint64_t cin_word,
                          BitSlicedKernel::Result* results) noexcept;

}  // namespace detail

/// Folds one batch into a metrics accumulator via
/// ErrorMetrics::add_batch — bit-identical to 64 scalar add() calls in
/// ascending lane order.
inline void accumulate(ErrorMetrics& metrics,
                       const BitSlicedKernel::Result& result) noexcept {
  metrics.add_batch(result.lane_mask, result.value_error_mask,
                    result.stage_fail_mask, result.error);
}

}  // namespace sealpaa::sim

#include "sealpaa/sim/exhaustive.hpp"

#include <stdexcept>

#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

ExhaustiveSimReport ExhaustiveSimulator::run(const multibit::AdderChain& chain,
                                             std::size_t max_width) {
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "ExhaustiveSimulator: width " + std::to_string(n) +
        " exceeds the sweep guard (" + std::to_string(max_width) + ")");
  }

  ExhaustiveSimReport report;
  util::WallTimer timer;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const multibit::TracedAddResult traced =
            chain.evaluate_traced(a, b, cin != 0);
        const multibit::AddResult exact =
            multibit::exact_add(a, b, cin != 0, n);
        report.metrics.add(traced.outputs.value(n), exact.value(n),
                           traced.all_stages_success);
        report.bit_operations += n;
      }
    }
  }
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace sealpaa::sim

#include "sealpaa/sim/exhaustive.hpp"

#include <algorithm>
#include <stdexcept>

#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

ExhaustiveSimReport ExhaustiveSimulator::run(const multibit::AdderChain& chain,
                                             std::size_t max_width,
                                             unsigned threads) {
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "ExhaustiveSimulator: width " + std::to_string(n) +
        " exceeds the sweep guard (" + std::to_string(max_width) + ")");
  }

  ExhaustiveSimReport report;
  util::WallTimer timer;
  const std::uint64_t limit = 1ULL << n;
  // The sweep is sharded along the `a` operand.  The grain depends only
  // on the width, so shard boundaries — and with the ordered reduction
  // the merged floating-point sums — are identical for every thread
  // count.
  const std::uint64_t grain = std::max<std::uint64_t>(1, limit / 64);

  struct Shard {
    ErrorMetrics metrics;
    std::uint64_t bit_operations = 0;
  };

  const Shard total = util::with_pool(threads, [&](util::ThreadPool& pool) {
    return util::parallel_map_reduce(
        pool, 0, limit, grain, Shard{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          Shard shard;
          for (std::uint64_t a = a_begin; a < a_end; ++a) {
            for (std::uint64_t b = 0; b < limit; ++b) {
              for (int cin = 0; cin < 2; ++cin) {
                const multibit::TracedAddResult traced =
                    chain.evaluate_traced(a, b, cin != 0);
                const multibit::AddResult exact =
                    multibit::exact_add(a, b, cin != 0, n);
                shard.metrics.add(traced.outputs.value(n), exact.value(n),
                                  traced.all_stages_success);
                shard.bit_operations += n;
              }
            }
          }
          return shard;
        },
        [](Shard& acc, Shard&& shard) {
          acc.metrics.merge(shard.metrics);
          acc.bit_operations += shard.bit_operations;
        },
        &report.shard_timings);
  });

  report.metrics = total.metrics;
  report.bit_operations = total.bit_operations;
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace sealpaa::sim

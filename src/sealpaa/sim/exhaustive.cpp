#include "sealpaa/sim/exhaustive.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

ExhaustiveShard exhaustive_shard_scalar(const multibit::AdderChain& chain,
                                        std::uint64_t a_begin,
                                        std::uint64_t a_end) {
  const std::size_t n = chain.width();
  const std::uint64_t limit = 1ULL << n;
  ExhaustiveShard shard;
  for (std::uint64_t a = a_begin; a < a_end; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      // The exact reference depends on cin only through the +1, so the
      // operand sum is hoisted out of the innermost loop.
      const std::uint64_t ab = a + b;
      for (int cin = 0; cin < 2; ++cin) {
        const multibit::TracedAddResult traced =
            chain.evaluate_traced(a, b, cin != 0);
        const std::uint64_t total = ab + (cin != 0 ? 1ULL : 0ULL);
        const std::uint64_t exact_value =
            multibit::mask_width(total, n) |
            (((total >> n) & 1ULL) << n);
        shard.metrics.add(traced.outputs.value(n), exact_value,
                          traced.all_stages_success);
        shard.bit_operations += n;
      }
    }
  }
  return shard;
}

ExhaustiveShard exhaustive_shard_bitsliced(const BitSlicedKernel& kernel,
                                           std::uint64_t a_begin,
                                           std::uint64_t a_end) {
  const std::size_t n = kernel.width();
  ExhaustiveShard shard;

  std::array<std::uint64_t, 64> a_words{};
  std::array<std::uint64_t, 64> b_words{};
  const std::uint64_t cin_word = kLaneCounterBit[0];  // cin toggles fastest

  if (n + 1 >= 6) {
    // Full batches: lane l covers (b = b_base + (l >> 1), cin = l & 1).
    // b_base is a multiple of 32, so bits 0..4 of b follow the lane
    // counter patterns and bits >= 5 are constant across the batch.
    // Consecutive batches share a and cin and differ only in b's high
    // bits, so whenever 8 or more batches remain they go through the
    // grouped kernel (8 batches rippled together); stragglers take the
    // single-batch path.  Batches are consumed in the same ascending
    // order either way, and each grouped result is bit-identical to its
    // single-batch counterpart, so the metrics fold is unchanged.
    constexpr std::uint64_t kGroup = BitSlicedKernel::kGroupBatches;
    const std::uint64_t batches_per_a = 1ULL << (n + 1 - 6);
    alignas(64) std::array<std::uint64_t, 64 * kGroup> b_group;
    std::array<BitSlicedKernel::Result, kGroup> results;
    for (std::size_t i = 0; i < std::min<std::size_t>(n, 5); ++i) {
      b_words[i] = kLaneCounterBit[i + 1];
      for (std::size_t j = 0; j < kGroup; ++j) {
        b_group[kGroup * i + j] = kLaneCounterBit[i + 1];
      }
    }
    for (std::uint64_t a = a_begin; a < a_end; ++a) {
      for (std::size_t i = 0; i < n; ++i) {
        a_words[i] = ((a >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
      }
      std::uint64_t batch = 0;
      for (; batch + kGroup <= batches_per_a; batch += kGroup) {
        for (std::size_t j = 0; j < kGroup; ++j) {
          const std::uint64_t b_base = (batch + j) << 5;
          for (std::size_t i = 5; i < n; ++i) {
            b_group[kGroup * i + j] =
                ((b_base >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
          }
        }
        kernel.run_packed_group(a_words.data(), b_group.data(), cin_word,
                                results.data());
        for (std::size_t j = 0; j < kGroup; ++j) {
          accumulate(shard.metrics, results[j]);
        }
        shard.bit_operations += static_cast<std::uint64_t>(n) * 64 * kGroup;
        shard.lane_batches += kGroup;
      }
      for (; batch < batches_per_a; ++batch) {
        const std::uint64_t b_base = batch << 5;
        for (std::size_t i = 5; i < n; ++i) {
          b_words[i] = ((b_base >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
        }
        const BitSlicedKernel::Result result =
            kernel.run_packed(a_words.data(), b_words.data(), cin_word,
                              ~0ULL);
        accumulate(shard.metrics, result);
        shard.bit_operations += static_cast<std::uint64_t>(n) * 64;
        ++shard.lane_batches;
      }
    }
  } else {
    // Width < 5: the whole (b, cin) sub-space fits one partial batch.
    const std::uint64_t inner = 1ULL << (n + 1);
    const std::uint64_t lane_mask = (1ULL << inner) - 1ULL;
    for (std::size_t i = 0; i < n; ++i) {
      b_words[i] = kLaneCounterBit[i + 1];
    }
    for (std::uint64_t a = a_begin; a < a_end; ++a) {
      for (std::size_t i = 0; i < n; ++i) {
        a_words[i] = ((a >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
      }
      const BitSlicedKernel::Result result = kernel.run_packed(
          a_words.data(), b_words.data(), cin_word, lane_mask);
      accumulate(shard.metrics, result);
      shard.bit_operations += static_cast<std::uint64_t>(n) * inner;
      ++shard.lane_batches;
      shard.masked_lanes += 64 - inner;
    }
  }
  return shard;
}

ExhaustiveSimReport ExhaustiveSimulator::run(const multibit::AdderChain& chain,
                                             std::size_t max_width,
                                             unsigned threads, Kernel kernel) {
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "ExhaustiveSimulator: width " + std::to_string(n) +
        " exceeds the sweep guard (" + std::to_string(max_width) + ")");
  }

  ExhaustiveSimReport report;
  report.kernel = kernel;
  util::WallTimer timer;
  const std::uint64_t limit = 1ULL << n;
  // The sweep is sharded along the `a` operand.  The grain depends only
  // on the width, so shard boundaries — and with the ordered reduction
  // the merged floating-point sums — are identical for every thread
  // count and for both kernels.
  const std::uint64_t grain = std::max<std::uint64_t>(1, limit / 64);

  const BitSlicedKernel sliced(chain);
  const auto run_shard = [&](std::uint64_t a_begin, std::uint64_t a_end) {
    return kernel == Kernel::kBitSliced
               ? exhaustive_shard_bitsliced(sliced, a_begin, a_end)
               : exhaustive_shard_scalar(chain, a_begin, a_end);
  };

  const ExhaustiveShard total =
      util::with_pool(threads, [&](util::ThreadPool& pool) {
        return util::parallel_map_reduce(
            pool, 0, limit, grain, ExhaustiveShard{}, run_shard,
            [](ExhaustiveShard& acc, ExhaustiveShard&& shard) {
              acc.metrics.merge(shard.metrics);
              acc.bit_operations += shard.bit_operations;
              acc.lane_batches += shard.lane_batches;
              acc.masked_lanes += shard.masked_lanes;
            },
            &report.shard_timings);
      });

  report.metrics = total.metrics;
  report.bit_operations = total.bit_operations;
  report.lane_batches = total.lane_batches;
  report.masked_lanes = total.masked_lanes;
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace sealpaa::sim

// Exhaustive simulation over all 2^(2N+1) input cases with equally
// probable inputs — the paper's validation oracle for the "Equally
// Probable / Finite" row of Table 6 and the exploding curve of Figure 1.
#pragma once

#include <cstdint>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::sim {

/// Outcome of an exhaustive sweep.  With uniform inputs each case has
/// probability 2^-(2N+1), so rates are exact probabilities.
struct ExhaustiveSimReport {
  ErrorMetrics metrics;
  double seconds = 0.0;               // wall-clock of the sweep
  std::uint64_t bit_operations = 0;   // single-bit adder evaluations
  Kernel kernel = Kernel::kBitSliced; // evaluation backend used
  std::uint64_t lane_batches = 0;     // 64-lane kernel passes (bit-sliced)
  std::uint64_t masked_lanes = 0;     // dead lanes in partial batches
  util::ShardTimings shard_timings;   // per-shard breakdown of the sweep
};

/// One shard [a_begin, a_end) of the exhaustive sweep: for every `a` the
/// full (b, cin) sub-space is evaluated in case order (b outer, cin
/// inner).  Exposed so the throughput bench can time exactly the
/// production inner loops; the simulator shards these over the pool.
struct ExhaustiveShard {
  ErrorMetrics metrics;
  std::uint64_t bit_operations = 0;
  std::uint64_t lane_batches = 0;
  std::uint64_t masked_lanes = 0;
};

/// Scalar reference shard: one evaluate_traced walk per case.
[[nodiscard]] ExhaustiveShard exhaustive_shard_scalar(
    const multibit::AdderChain& chain, std::uint64_t a_begin,
    std::uint64_t a_end);

/// Bit-sliced shard: 64 consecutive (b, cin) cases per kernel pass.  The
/// lane words come from counter patterns (kLaneCounterBit), so packing
/// costs no transpose.  Metrics are bit-identical to the scalar shard.
[[nodiscard]] ExhaustiveShard exhaustive_shard_bitsliced(
    const BitSlicedKernel& kernel, std::uint64_t a_begin,
    std::uint64_t a_end);

class ExhaustiveSimulator {
 public:
  /// Sweeps every (a, b, cin) combination.  Guarded by `max_width`
  /// (default 13: 2^27 ≈ 134M cases).  The input space is sharded over a
  /// thread pool (`threads == 0` → the shared pool at
  /// util::default_threads()); shard layout and the ordered metric merge
  /// make the report bit-identical for every thread count.  `kernel`
  /// picks the evaluation backend; both produce identical metrics (the
  /// differential suite enforces it), the bit-sliced one is just an
  /// order of magnitude faster.
  [[nodiscard]] static ExhaustiveSimReport run(
      const multibit::AdderChain& chain, std::size_t max_width = 13,
      unsigned threads = 0, Kernel kernel = Kernel::kBitSliced);
};

}  // namespace sealpaa::sim

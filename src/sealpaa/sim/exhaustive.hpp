// Exhaustive simulation over all 2^(2N+1) input cases with equally
// probable inputs — the paper's validation oracle for the "Equally
// Probable / Finite" row of Table 6 and the exploding curve of Figure 1.
#pragma once

#include <cstdint>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::sim {

/// Outcome of an exhaustive sweep.  With uniform inputs each case has
/// probability 2^-(2N+1), so rates are exact probabilities.
struct ExhaustiveSimReport {
  ErrorMetrics metrics;
  double seconds = 0.0;               // wall-clock of the sweep
  std::uint64_t bit_operations = 0;   // single-bit adder evaluations
  util::ShardTimings shard_timings;   // per-shard breakdown of the sweep
};

class ExhaustiveSimulator {
 public:
  /// Sweeps every (a, b, cin) combination.  Guarded by `max_width`
  /// (default 13: 2^27 ≈ 134M cases).  The input space is sharded over a
  /// thread pool (`threads == 0` → the shared pool at
  /// util::default_threads()); shard layout and the ordered metric merge
  /// make the report bit-identical for every thread count.
  [[nodiscard]] static ExhaustiveSimReport run(
      const multibit::AdderChain& chain, std::size_t max_width = 13,
      unsigned threads = 0);
};

}  // namespace sealpaa::sim

#include "sealpaa/sim/montecarlo.hpp"

#include <stdexcept>
#include <thread>
#include <vector>

#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

namespace {

ErrorMetrics simulate_shard(const multibit::AdderChain& chain,
                            const multibit::InputProfile& profile,
                            std::uint64_t samples,
                            prob::Xoshiro256StarStar rng) {
  const std::size_t n = chain.width();
  ErrorMetrics metrics;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const multibit::InputProfile::Sample input = profile.sample(rng);
    const multibit::TracedAddResult traced =
        chain.evaluate_traced(input.a, input.b, input.cin);
    const multibit::AddResult exact =
        multibit::exact_add(input.a, input.b, input.cin, n);
    metrics.add(traced.outputs.value(n), exact.value(n),
                traced.all_stages_success);
  }
  return metrics;
}

}  // namespace

MonteCarloReport MonteCarloSimulator::run(const multibit::AdderChain& chain,
                                          const multibit::InputProfile& profile,
                                          std::uint64_t samples,
                                          std::uint64_t seed) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }
  const std::size_t n = chain.width();

  (void)n;
  MonteCarloReport report;
  report.samples = samples;
  util::WallTimer timer;
  report.metrics =
      simulate_shard(chain, profile, samples, prob::Xoshiro256StarStar(seed));
  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

MonteCarloReport MonteCarloSimulator::run_parallel(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::uint64_t samples, unsigned threads, std::uint64_t seed) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }
  if (threads == 0) {
    throw std::invalid_argument("MonteCarloSimulator: threads must be >= 1");
  }

  MonteCarloReport report;
  report.samples = samples;
  util::WallTimer timer;

  // Disjoint streams: worker i uses the base generator advanced by i
  // jumps (each jump skips 2^128 draws).
  std::vector<prob::Xoshiro256StarStar> rngs;
  prob::Xoshiro256StarStar base(seed);
  for (unsigned t = 0; t < threads; ++t) {
    rngs.push_back(base);
    base.jump();
  }

  const std::uint64_t per_shard = samples / threads;
  std::vector<ErrorMetrics> shard_metrics(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t shard_samples =
        t == 0 ? samples - per_shard * (threads - 1) : per_shard;
    workers.emplace_back([&, t, shard_samples] {
      shard_metrics[t] =
          simulate_shard(chain, profile, shard_samples, rngs[t]);
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const ErrorMetrics& shard : shard_metrics) {
    report.metrics.merge(shard);
  }

  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

}  // namespace sealpaa::sim

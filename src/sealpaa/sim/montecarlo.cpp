#include "sealpaa/sim/montecarlo.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

namespace {

// Samples handled by one RNG stream.  The shard layout is a function of
// the sample count alone, so the merged metrics depend only on
// (seed, samples) — never on how many threads executed the shards.
constexpr std::uint64_t kShardSamples = 1ULL << 16;

struct SimShard {
  ErrorMetrics metrics;
  std::uint64_t lane_batches = 0;
  std::uint64_t masked_lanes = 0;
};

SimShard simulate_shard_scalar(const multibit::AdderChain& chain,
                               const multibit::InputProfile& profile,
                               std::uint64_t samples,
                               prob::Xoshiro256StarStar rng) {
  const std::size_t n = chain.width();
  SimShard shard;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const multibit::InputProfile::Sample input = profile.sample(rng);
    const multibit::TracedAddResult traced =
        chain.evaluate_traced(input.a, input.b, input.cin);
    const multibit::AddResult exact =
        multibit::exact_add(input.a, input.b, input.cin, n);
    shard.metrics.add(traced.outputs.value(n), exact.value(n),
                      traced.all_stages_success);
  }
  return shard;
}

// Same draw order as the scalar shard, evaluated 64 samples per kernel
// pass; the final partial batch runs with its remainder lanes masked.
SimShard simulate_shard_bitsliced(const BitSlicedKernel& kernel,
                                  const multibit::InputProfile& profile,
                                  std::uint64_t samples,
                                  prob::Xoshiro256StarStar rng) {
  SimShard shard;
  std::array<std::uint64_t, 64> a_lanes;
  std::array<std::uint64_t, 64> b_lanes;
  for (std::uint64_t first = 0; first < samples; first += 64) {
    const std::uint64_t count = std::min<std::uint64_t>(64, samples - first);
    a_lanes.fill(0);
    b_lanes.fill(0);
    std::uint64_t cin_word = 0;
    for (std::uint64_t lane = 0; lane < count; ++lane) {
      const multibit::InputProfile::Sample input = profile.sample(rng);
      a_lanes[lane] = input.a;
      b_lanes[lane] = input.b;
      if (input.cin) cin_word |= 1ULL << lane;
    }
    const std::uint64_t lane_mask =
        count == 64 ? ~0ULL : (1ULL << count) - 1ULL;
    const BitSlicedKernel::Result result =
        kernel.run(a_lanes.data(), b_lanes.data(), cin_word, lane_mask);
    accumulate(shard.metrics, result);
    ++shard.lane_batches;
    shard.masked_lanes += 64 - count;
  }
  return shard;
}

SimShard simulate_shard(const multibit::AdderChain& chain,
                        const BitSlicedKernel* kernel,
                        const multibit::InputProfile& profile,
                        std::uint64_t samples, prob::Xoshiro256StarStar rng) {
  return kernel != nullptr
             ? simulate_shard_bitsliced(*kernel, profile, samples, rng)
             : simulate_shard_scalar(chain, profile, samples, rng);
}

}  // namespace

MonteCarloReport MonteCarloSimulator::run(const multibit::AdderChain& chain,
                                          const multibit::InputProfile& profile,
                                          std::uint64_t samples,
                                          std::uint64_t seed, Kernel kernel) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }

  MonteCarloReport report;
  report.samples = samples;
  report.kernel = kernel;
  // Zero samples: no data, so the metrics stay at their identity and the
  // confidence intervals stay empty — never NaN or a fabricated [0, 1].
  if (samples == 0) return report;
  util::WallTimer timer;
  const BitSlicedKernel sliced(chain);
  const SimShard shard = simulate_shard(
      chain, kernel == Kernel::kBitSliced ? &sliced : nullptr, profile,
      samples, prob::Xoshiro256StarStar(seed));
  report.metrics = shard.metrics;
  report.lane_batches = shard.lane_batches;
  report.masked_lanes = shard.masked_lanes;
  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

MonteCarloReport MonteCarloSimulator::run_parallel(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::uint64_t samples, unsigned threads, std::uint64_t seed,
    Kernel kernel) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }
  if (threads == 0) {
    throw std::invalid_argument("MonteCarloSimulator: threads must be >= 1");
  }

  MonteCarloReport report;
  report.samples = samples;
  report.kernel = kernel;
  if (samples == 0) return report;  // empty metrics, empty CIs — not NaN
  util::WallTimer timer;

  // Disjoint streams: shard s uses the base generator advanced by s
  // jumps (each jump skips 2^128 draws).  Shard 0 is the unjumped base,
  // so a single-shard run reproduces run() exactly.
  const std::uint64_t shards =
      std::max<std::uint64_t>(1, (samples + kShardSamples - 1) / kShardSamples);
  std::vector<prob::Xoshiro256StarStar> rngs;
  rngs.reserve(static_cast<std::size_t>(shards));
  prob::Xoshiro256StarStar base(seed);
  for (std::uint64_t s = 0; s < shards; ++s) {
    rngs.push_back(base);
    base.jump();
  }

  const BitSlicedKernel sliced(chain);
  const BitSlicedKernel* sliced_ptr =
      kernel == Kernel::kBitSliced ? &sliced : nullptr;
  const SimShard total = util::with_pool(threads, [&](util::ThreadPool& pool) {
    return util::parallel_map_reduce(
        pool, 0, shards, 1, SimShard{},
        [&](std::uint64_t shard, std::uint64_t) {
          const std::uint64_t first = shard * kShardSamples;
          const std::uint64_t count = std::min(kShardSamples, samples - first);
          return simulate_shard(chain, sliced_ptr, profile, count,
                                rngs[static_cast<std::size_t>(shard)]);
        },
        [](SimShard& acc, SimShard&& shard) {
          acc.metrics.merge(shard.metrics);
          acc.lane_batches += shard.lane_batches;
          acc.masked_lanes += shard.masked_lanes;
        },
        &report.shard_timings);
  });
  report.metrics = total.metrics;
  report.lane_batches = total.lane_batches;
  report.masked_lanes = total.masked_lanes;

  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

}  // namespace sealpaa::sim

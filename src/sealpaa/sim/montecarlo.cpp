#include "sealpaa/sim/montecarlo.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sealpaa/prob/rng.hpp"
#include "sealpaa/util/parallel.hpp"
#include "sealpaa/util/timer.hpp"

namespace sealpaa::sim {

namespace {

// Samples handled by one RNG stream.  The shard layout is a function of
// the sample count alone, so the merged metrics depend only on
// (seed, samples) — never on how many threads executed the shards.
constexpr std::uint64_t kShardSamples = 1ULL << 16;

ErrorMetrics simulate_shard(const multibit::AdderChain& chain,
                            const multibit::InputProfile& profile,
                            std::uint64_t samples,
                            prob::Xoshiro256StarStar rng) {
  const std::size_t n = chain.width();
  ErrorMetrics metrics;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const multibit::InputProfile::Sample input = profile.sample(rng);
    const multibit::TracedAddResult traced =
        chain.evaluate_traced(input.a, input.b, input.cin);
    const multibit::AddResult exact =
        multibit::exact_add(input.a, input.b, input.cin, n);
    metrics.add(traced.outputs.value(n), exact.value(n),
                traced.all_stages_success);
  }
  return metrics;
}

}  // namespace

MonteCarloReport MonteCarloSimulator::run(const multibit::AdderChain& chain,
                                          const multibit::InputProfile& profile,
                                          std::uint64_t samples,
                                          std::uint64_t seed) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }

  MonteCarloReport report;
  report.samples = samples;
  // Zero samples: no data, so the metrics stay at their identity and the
  // confidence intervals stay empty — never NaN or a fabricated [0, 1].
  if (samples == 0) return report;
  util::WallTimer timer;
  report.metrics =
      simulate_shard(chain, profile, samples, prob::Xoshiro256StarStar(seed));
  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

MonteCarloReport MonteCarloSimulator::run_parallel(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::uint64_t samples, unsigned threads, std::uint64_t seed) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "MonteCarloSimulator: chain and profile widths differ");
  }
  if (threads == 0) {
    throw std::invalid_argument("MonteCarloSimulator: threads must be >= 1");
  }

  MonteCarloReport report;
  report.samples = samples;
  if (samples == 0) return report;  // empty metrics, empty CIs — not NaN
  util::WallTimer timer;

  // Disjoint streams: shard s uses the base generator advanced by s
  // jumps (each jump skips 2^128 draws).  Shard 0 is the unjumped base,
  // so a single-shard run reproduces run() exactly.
  const std::uint64_t shards =
      std::max<std::uint64_t>(1, (samples + kShardSamples - 1) / kShardSamples);
  std::vector<prob::Xoshiro256StarStar> rngs;
  rngs.reserve(static_cast<std::size_t>(shards));
  prob::Xoshiro256StarStar base(seed);
  for (std::uint64_t s = 0; s < shards; ++s) {
    rngs.push_back(base);
    base.jump();
  }

  report.metrics = util::with_pool(threads, [&](util::ThreadPool& pool) {
    return util::parallel_map_reduce(
        pool, 0, shards, 1, ErrorMetrics{},
        [&](std::uint64_t shard, std::uint64_t) {
          const std::uint64_t first = shard * kShardSamples;
          const std::uint64_t count = std::min(kShardSamples, samples - first);
          return simulate_shard(chain, profile, count,
                                rngs[static_cast<std::size_t>(shard)]);
        },
        [](ErrorMetrics& acc, ErrorMetrics&& shard) { acc.merge(shard); },
        &report.shard_timings);
  });

  report.seconds = timer.elapsed_seconds();
  report.stage_failure_ci =
      prob::wilson_interval(report.metrics.stage_failures(), samples, 1.96);
  report.value_error_ci =
      prob::wilson_interval(report.metrics.value_errors(), samples, 1.96);
  return report;
}

}  // namespace sealpaa::sim

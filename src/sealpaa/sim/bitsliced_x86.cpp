// Runtime-dispatched AVX-512 + GFNI fast paths for the bit-sliced
// kernel's fixed per-batch tail work: the 64x64 bit-matrix transpose
// behind transpose64_fast, the first-failed-stage fold and the per-lane
// error extraction.  Portable fallbacks live in this file too, so every
// build has identical behaviour — the SIMD variants are pure bit
// permutations / masked moves and can never change results; unit tests
// pin them against the portable implementations.
//
// The transpose runs in ~56 instructions:
//
//   1. A three-level permutex2var byte-shuffle network gathers column
//      byte C of all 64 rows into one register per C, with the rows of
//      every 8-row group reversed (step 2 needs the reversal, so it is
//      folded into the gather's index tables for free).
//   2. VGF2P8AFFINEQB with the data operand set to identity bytes
//      e_0..e_7 returns, for each qword of the *matrix* operand X,
//      result.byte[b].bit[k] = X.byte[7-k].bit[b] — with the pre-reversed
//      rows, exactly the 8x8 bit transpose of each block.
//   3. One VPERMB per register restores row-major byte order.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/util/kernel_override.hpp"

namespace sealpaa::sim {

namespace {

void scatter_first_failed_portable(
    const std::uint64_t* failed_masks, std::size_t n,
    std::array<std::int8_t, 64>& first_failed) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t w = failed_masks[i]; w != 0; w &= w - 1) {
      first_failed[static_cast<std::size_t>(std::countr_zero(w))] =
          static_cast<std::int8_t>(i);
    }
  }
}

void finalize_errors_portable(std::array<std::uint64_t, 64>& approx,
                              std::array<std::uint64_t, 64>& exact,
                              std::uint64_t value_error_mask,
                              std::array<std::int64_t, 64>& error) noexcept {
  transpose64(approx);
  transpose64(exact);
  error.fill(0);
  for (std::uint64_t w = value_error_mask; w != 0; w &= w - 1) {
    const auto lane = static_cast<std::size_t>(std::countr_zero(w));
    error[lane] = static_cast<std::int64_t>(approx[lane] - exact[lane]);
  }
}

}  // namespace

}  // namespace sealpaa::sim

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace sealpaa::sim {

namespace {

// Level 1 gathers, for each pair of input registers (rows 16p..16p+15),
// the four column bytes C = 4h..4h+3: dest byte 16*Cl + r16 takes row
// 16p + r16's byte C = 4h + Cl.
constexpr std::array<std::uint8_t, 64> l1_index(unsigned h) {
  std::array<std::uint8_t, 64> idx{};
  for (unsigned cl = 0; cl < 4; ++cl) {
    for (unsigned r = 0; r < 16; ++r) {
      idx[16 * cl + r] = static_cast<std::uint8_t>(
          (r >= 8 ? 64 : 0) + 8 * (r & 7) + 4 * h + cl);
    }
  }
  return idx;
}

// Level 2 widens to 32-row spans and two column bytes C = 4h + 2*h2 +
// Cl2: dest byte 32*Cl2 + r32 takes row 32q + r32's entry from the
// level-1 layout.
constexpr std::array<std::uint8_t, 64> l2_index(unsigned h2) {
  std::array<std::uint8_t, 64> idx{};
  for (unsigned cl2 = 0; cl2 < 2; ++cl2) {
    for (unsigned r = 0; r < 32; ++r) {
      idx[32 * cl2 + r] = static_cast<std::uint8_t>(
          (r >= 16 ? 64 : 0) + 16 * (2 * h2 + cl2) + (r & 15));
    }
  }
  return idx;
}

// Level 3 produces one full column register c[C]: byte r holds row
// (r & 56) | (7 - (r & 7))'s byte C — the row order inside every 8-row
// group is reversed here so the affine step below lands on the pure
// transpose.
constexpr std::array<std::uint8_t, 64> l3_index(unsigned c1) {
  std::array<std::uint8_t, 64> idx{};
  for (unsigned r = 0; r < 64; ++r) {
    const unsigned src_r = (r & 56U) | (7U - (r & 7U));
    idx[r] = static_cast<std::uint8_t>((r >= 32 ? 64 : 0) + 32 * c1 +
                                       (src_r & 31));
  }
  return idx;
}

// After the affine step, qword Q byte b of c[C] is output row 8C + b's
// byte Q; this permutation moves it to row-major position 8b + Q.
constexpr std::array<std::uint8_t, 64> final_index() {
  std::array<std::uint8_t, 64> idx{};
  for (unsigned j = 0; j < 64; ++j) {
    idx[j] = static_cast<std::uint8_t>(8 * (j & 7) + (j >> 3));
  }
  return idx;
}

alignas(64) constexpr std::array<std::uint8_t, 64> kL1[2] = {l1_index(0),
                                                             l1_index(1)};
alignas(64) constexpr std::array<std::uint8_t, 64> kL2[2] = {l2_index(0),
                                                             l2_index(1)};
alignas(64) constexpr std::array<std::uint8_t, 64> kL3[2] = {l3_index(0),
                                                             l3_index(1)};
alignas(64) constexpr std::array<std::uint8_t, 64> kFinal = final_index();

// Identity bytes e_0..e_7: as the *data* operand of VGF2P8AFFINEQB this
// turns the instruction into "read out the matrix operand's rows".
constexpr long long kIdentityBytes =
    static_cast<long long>(0x8040'2010'0804'0201ULL);

// The eight shuffle/affine constants, loaded once per entry point so
// fused multi-plane transposes don't re-read them per plane.
struct TransposeConstants {
  __m512i l1_0, l1_1, l2_0, l2_1, l3_0, l3_1, fin, identity;
};

[[gnu::target("avx512f,avx512bw,avx512vbmi,gfni")]]
inline TransposeConstants load_transpose_constants() noexcept {
  return TransposeConstants{_mm512_load_si512(kL1[0].data()),
                            _mm512_load_si512(kL1[1].data()),
                            _mm512_load_si512(kL2[0].data()),
                            _mm512_load_si512(kL2[1].data()),
                            _mm512_load_si512(kL3[0].data()),
                            _mm512_load_si512(kL3[1].data()),
                            _mm512_load_si512(kFinal.data()),
                            _mm512_set1_epi64(kIdentityBytes)};
}

[[gnu::target("avx512f,avx512bw,avx512vbmi,gfni")]]
inline void transpose64_core(std::uint64_t* m,
                             const TransposeConstants& k) noexcept {
  const __m512i l1_0 = k.l1_0;
  const __m512i l1_1 = k.l1_1;
  const __m512i l2_0 = k.l2_0;
  const __m512i l2_1 = k.l2_1;
  const __m512i l3_0 = k.l3_0;
  const __m512i l3_1 = k.l3_1;
  const __m512i fin = k.fin;
  const __m512i identity = k.identity;

  __m512i z[8];
  for (int r = 0; r < 8; ++r) z[r] = _mm512_loadu_si512(m + 8 * r);

  __m512i a[2][4];  // [h][p]: rows 16p..16p+15, column bytes 4h..4h+3
  for (int p = 0; p < 4; ++p) {
    a[0][p] = _mm512_permutex2var_epi8(z[2 * p], l1_0, z[2 * p + 1]);
    a[1][p] = _mm512_permutex2var_epi8(z[2 * p], l1_1, z[2 * p + 1]);
  }

  __m512i o[2][2][2];  // [h][h2][q]: rows 32q..32q+31, bytes 4h+2*h2..+1
  for (int h = 0; h < 2; ++h) {
    for (int q = 0; q < 2; ++q) {
      o[h][0][q] =
          _mm512_permutex2var_epi8(a[h][2 * q], l2_0, a[h][2 * q + 1]);
      o[h][1][q] =
          _mm512_permutex2var_epi8(a[h][2 * q], l2_1, a[h][2 * q + 1]);
    }
  }

  for (int c = 0; c < 8; ++c) {
    const int h = c >> 2;
    const int h2 = (c >> 1) & 1;
    const __m512i col = _mm512_permutex2var_epi8(
        o[h][h2][0], (c & 1) != 0 ? l3_1 : l3_0, o[h][h2][1]);
    const __m512i bits = _mm512_gf2p8affine_epi64_epi8(identity, col, 0);
    _mm512_storeu_si512(m + 8 * c, _mm512_permutexvar_epi8(fin, bits));
  }
}

[[gnu::target("avx512f,avx512bw,avx512vbmi,gfni")]]
void transpose64_zmm(std::uint64_t* m) noexcept {
  transpose64_core(m, load_transpose_constants());
}

// One masked byte-blend per stage, no data-dependent iteration counts:
// lanes that fail at stage i take the broadcast stage index, all other
// lanes keep their current value.  Stages run in ascending order and the
// masks are disjoint, so the result equals the portable scatter.
[[gnu::target("avx512f,avx512bw")]]
void scatter_first_failed_zmm(
    const std::uint64_t* failed_masks, std::size_t n,
    std::array<std::int8_t, 64>& first_failed) noexcept {
  __m512i ff = _mm512_loadu_si512(first_failed.data());
  for (std::size_t i = 0; i < n; ++i) {
    ff = _mm512_mask_blend_epi8(
        static_cast<__mmask64>(failed_masks[i]), ff,
        _mm512_set1_epi8(static_cast<char>(static_cast<unsigned char>(i))));
  }
  _mm512_storeu_si512(first_failed.data(), ff);
}

// Fused two-plane transpose (constants loaded once, planes interleaved
// by the out-of-order core) followed by masked lane-wise subtraction:
// lanes in the mask get int64(approx - exact), every other lane is
// zeroed by the maskz store.
[[gnu::target("avx512f,avx512bw,avx512vbmi,gfni")]]
void finalize_errors_zmm(std::array<std::uint64_t, 64>& approx,
                         std::array<std::uint64_t, 64>& exact,
                         std::uint64_t value_error_mask,
                         std::array<std::int64_t, 64>& error) noexcept {
  const TransposeConstants k = load_transpose_constants();
  transpose64_core(approx.data(), k);
  transpose64_core(exact.data(), k);
  for (int q = 0; q < 8; ++q) {
    const auto mask =
        static_cast<__mmask8>((value_error_mask >> (8 * q)) & 0xFFU);
    const __m512i va = _mm512_loadu_si512(approx.data() + 8 * q);
    const __m512i ve = _mm512_loadu_si512(exact.data() + 8 * q);
    _mm512_storeu_si512(error.data() + 8 * q,
                        _mm512_maskz_sub_epi64(mask, va, ve));
  }
}

// Applies an arbitrary 8-bit truth table to three 512-bit lane words in
// one VPTERNLOGQ.  The instruction indexes its immediate with
// (src1<<2)|(src2<<1)|src3 per bit — exactly the paper's Table 1 row
// order (a<<2)|(b<<1)|cin — so the table byte IS the immediate.  The
// immediate must be a compile-time constant, hence the 256-way switch;
// it compiles to one predictable indirect jump, amortized over the 8
// batches (512 lanes) each call evaluates.
#define SEALPAA_TERN_CASE(n) \
  case (n):                  \
    return _mm512_ternarylogic_epi64(a, b, c, (n));
#define SEALPAA_TERN_CASES16(base)                            \
  SEALPAA_TERN_CASE((base) + 0) SEALPAA_TERN_CASE((base) + 1) \
  SEALPAA_TERN_CASE((base) + 2) SEALPAA_TERN_CASE((base) + 3) \
  SEALPAA_TERN_CASE((base) + 4) SEALPAA_TERN_CASE((base) + 5) \
  SEALPAA_TERN_CASE((base) + 6) SEALPAA_TERN_CASE((base) + 7) \
  SEALPAA_TERN_CASE((base) + 8) SEALPAA_TERN_CASE((base) + 9) \
  SEALPAA_TERN_CASE((base) + 10) SEALPAA_TERN_CASE((base) + 11) \
  SEALPAA_TERN_CASE((base) + 12) SEALPAA_TERN_CASE((base) + 13) \
  SEALPAA_TERN_CASE((base) + 14) SEALPAA_TERN_CASE((base) + 15)

[[gnu::target("avx512f")]] [[gnu::always_inline]]
inline __m512i tern_table(std::uint8_t truth, __m512i a, __m512i b,
                          __m512i c) noexcept {
  switch (truth) {
    SEALPAA_TERN_CASES16(0)
    SEALPAA_TERN_CASES16(16)
    SEALPAA_TERN_CASES16(32)
    SEALPAA_TERN_CASES16(48)
    SEALPAA_TERN_CASES16(64)
    SEALPAA_TERN_CASES16(80)
    SEALPAA_TERN_CASES16(96)
    SEALPAA_TERN_CASES16(112)
    SEALPAA_TERN_CASES16(128)
    SEALPAA_TERN_CASES16(144)
    SEALPAA_TERN_CASES16(160)
    SEALPAA_TERN_CASES16(176)
    SEALPAA_TERN_CASES16(192)
    SEALPAA_TERN_CASES16(208)
    SEALPAA_TERN_CASES16(224)
    SEALPAA_TERN_CASES16(240)
  }
  return _mm512_setzero_si512();  // unreachable: all 256 bytes covered
}

#undef SEALPAA_TERN_CASES16
#undef SEALPAA_TERN_CASE

// The grouped stage loop: 8 batches ripple side by side, one qword per
// batch in every 512-bit signal word.  Per stage that is three
// VPTERNLOGQ for the approximate cell (sum / success / carry-out), two
// for the exact reference (0x96 parity, 0xE8 majority) and one folding
// this stage's sum-vs-exact difference into the running mask
// ((s ^ e) | d = table 0xBE over (s, e, d)).  The per-batch tail work —
// first-failed fold, plane transposes, error extraction — then reuses
// the single-batch zmm helpers on columns peeled from the stage-major
// stores.
[[gnu::target("avx512f,avx512bw,avx512vbmi,gfni")]]
void run_packed_group_zmm_impl(const detail::StageTruth* truths,
                               std::size_t n, const std::uint64_t* a_words,
                               const std::uint64_t* b_group,
                               std::uint64_t cin_word,
                               BitSlicedKernel::Result* results) noexcept {
  constexpr std::size_t kBatches = BitSlicedKernel::kGroupBatches;
  alignas(64) std::uint64_t ap8[64][kBatches];
  alignas(64) std::uint64_t ex8[64][kBatches];
  alignas(64) std::uint64_t fm8[64][kBatches];
  alignas(64) std::uint64_t ok8[kBatches];
  alignas(64) std::uint64_t sd8[kBatches];

  __m512i carry = _mm512_set1_epi64(static_cast<long long>(cin_word));
  __m512i exact_carry = carry;
  __m512i ok = _mm512_set1_epi64(-1);
  __m512i sum_diff = _mm512_setzero_si512();

  for (std::size_t i = 0; i < n; ++i) {
    const __m512i a =
        _mm512_set1_epi64(static_cast<long long>(a_words[i]));
    // loadu: callers owe no alignment for b_group (the exhaustive shard
    // aligns its buffer anyway, where loadu costs nothing).
    const __m512i b = _mm512_loadu_si512(b_group + kBatches * i);

    const __m512i sum = tern_table(truths[i].sum, a, b, carry);
    const __m512i success = tern_table(truths[i].success, a, b, carry);
    const __m512i next_carry = tern_table(truths[i].carry, a, b, carry);

    _mm512_store_si512(fm8[i], _mm512_andnot_si512(success, ok));
    ok = _mm512_and_si512(ok, success);

    const __m512i exact_sum =
        _mm512_ternarylogic_epi64(a, b, exact_carry, 0x96);
    const __m512i next_exact =
        _mm512_ternarylogic_epi64(a, b, exact_carry, 0xE8);
    sum_diff = _mm512_ternarylogic_epi64(sum, exact_sum, sum_diff, 0xBE);

    _mm512_store_si512(ap8[i], sum);
    _mm512_store_si512(ex8[i], exact_sum);
    carry = next_carry;
    exact_carry = next_exact;
  }
  _mm512_store_si512(ap8[n], carry);
  _mm512_store_si512(ex8[n], exact_carry);
  _mm512_store_si512(ok8, ok);
  _mm512_store_si512(sd8, sum_diff);

  alignas(64) std::array<std::uint64_t, 64> approx;
  alignas(64) std::array<std::uint64_t, 64> exact;
  std::uint64_t fm_col[64];
  for (std::size_t j = 0; j < kBatches; ++j) {
    BitSlicedKernel::Result& r = results[j];
    r.lane_mask = ~0ULL;
    r.sum_bits_error_mask = sd8[j];
    r.value_error_mask = sd8[j] | (ap8[n][j] ^ ex8[n][j]);
    r.stage_fail_mask = ~ok8[j];
    r.first_failed.fill(-1);
    if (r.stage_fail_mask != 0) {
      for (std::size_t i = 0; i < n; ++i) fm_col[i] = fm8[i][j];
      scatter_first_failed_zmm(fm_col, n, r.first_failed);
    }
    if (r.value_error_mask != 0) {
      for (std::size_t i = 0; i <= n; ++i) {
        approx[i] = ap8[i][j];
        exact[i] = ex8[i][j];
      }
      for (std::size_t i = n + 1; i < 64; ++i) {
        approx[i] = 0;
        exact[i] = 0;
      }
      finalize_errors_zmm(approx, exact, r.value_error_mask, r.error);
    } else {
      r.error.fill(0);
    }
  }
}

bool cpu_has_zmm_kernels() noexcept {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vbmi") != 0 &&
         __builtin_cpu_supports("gfni") != 0;
}

}  // namespace

bool transpose64_accelerated() noexcept {
  // CPU support is immutable and latched once; the SEALPAA_FORCE_KERNEL
  // cap is consulted per call (one relaxed atomic load) so tests can
  // flip dispatch levels mid-process.  The sim has exactly two tiers —
  // portable and AVX-512 — so any cap below avx512 selects portable.
  static const bool supported = cpu_has_zmm_kernels();
  return supported &&
         util::kernel_level_allowed(util::KernelLevel::kAvx512);
}

void transpose64_fast(std::array<std::uint64_t, 64>& m) noexcept {
  if (transpose64_accelerated()) {
    transpose64_zmm(m.data());
    return;
  }
  transpose64(m);
}

namespace detail {

void scatter_first_failed(const std::uint64_t* failed_masks, std::size_t n,
                          std::array<std::int8_t, 64>& first_failed) noexcept {
  if (transpose64_accelerated()) {
    scatter_first_failed_zmm(failed_masks, n, first_failed);
    return;
  }
  scatter_first_failed_portable(failed_masks, n, first_failed);
}

void finalize_errors(std::array<std::uint64_t, 64>& approx,
                     std::array<std::uint64_t, 64>& exact,
                     std::uint64_t value_error_mask,
                     std::array<std::int64_t, 64>& error) noexcept {
  if (transpose64_accelerated()) {
    finalize_errors_zmm(approx, exact, value_error_mask, error);
    return;
  }
  finalize_errors_portable(approx, exact, value_error_mask, error);
}

void run_packed_group_zmm(const StageTruth* truths, std::size_t n,
                          const std::uint64_t* a_words,
                          const std::uint64_t* b_group,
                          std::uint64_t cin_word,
                          BitSlicedKernel::Result* results) noexcept {
  run_packed_group_zmm_impl(truths, n, a_words, b_group, cin_word, results);
}

}  // namespace detail

}  // namespace sealpaa::sim

#else  // non-x86 or unsupported compiler: portable paths only.

namespace sealpaa::sim {

bool transpose64_accelerated() noexcept { return false; }

void transpose64_fast(std::array<std::uint64_t, 64>& m) noexcept {
  transpose64(m);
}

namespace detail {

void scatter_first_failed(const std::uint64_t* failed_masks, std::size_t n,
                          std::array<std::int8_t, 64>& first_failed) noexcept {
  scatter_first_failed_portable(failed_masks, n, first_failed);
}

void finalize_errors(std::array<std::uint64_t, 64>& approx,
                     std::array<std::uint64_t, 64>& exact,
                     std::uint64_t value_error_mask,
                     std::array<std::int64_t, 64>& error) noexcept {
  finalize_errors_portable(approx, exact, value_error_mask, error);
}

void run_packed_group_zmm(const StageTruth*, std::size_t,
                          const std::uint64_t*, const std::uint64_t*,
                          std::uint64_t, BitSlicedKernel::Result*) noexcept {
  // Unreachable: run_packed_group only dispatches here when
  // transpose64_accelerated() is true, which this build never reports.
}

}  // namespace detail

}  // namespace sealpaa::sim

#endif

#include "sealpaa/sim/bitsliced.hpp"

#include <bit>
#include <cstddef>

namespace sealpaa::sim {

namespace {

// One candidate product term during compilation: each variable is
// absent (0), positive (1) or negated (2).
struct Implicant {
  std::uint8_t cover = 0;  // rows where the product is 1
  std::uint8_t a = 0, b = 0, c = 0;
};

std::uint8_t coverage(std::uint8_t sa, std::uint8_t sb, std::uint8_t sc) {
  std::uint8_t cover = 0;
  for (std::uint8_t row = 0; row < 8; ++row) {
    const bool av = ((row >> 2) & 1) != 0;
    const bool bv = ((row >> 1) & 1) != 0;
    const bool cv = (row & 1) != 0;
    const bool match = (sa == 0 || (sa == 1) == av) &&
                       (sb == 0 || (sb == 1) == bv) &&
                       (sc == 0 || (sc == 1) == cv);
    if (match) cover |= static_cast<std::uint8_t>(1U << row);
  }
  return cover;
}

SlicedLut::Term make_term(const Implicant& imp) {
  SlicedLut::Term term;
  const auto wire = [](std::uint8_t state, std::uint64_t& flip,
                       std::uint64_t& ignore) {
    flip = state == 2 ? ~0ULL : 0ULL;
    ignore = state == 0 ? ~0ULL : 0ULL;
  };
  wire(imp.a, term.flip_a, term.ignore_a);
  wire(imp.b, term.flip_b, term.ignore_b);
  wire(imp.c, term.flip_c, term.ignore_c);
  return term;
}

}  // namespace

SlicedLut compile_lut(std::uint8_t truth) {
  SlicedLut lut;
  // Recognize the tables with cheaper-than-SOP forms: constants, single
  // literals (wire/pass-through columns — LPAA5 is Sum = B, Cout = A),
  // two-input parities, 0x96 / 0x69 three-input parity and its
  // complement (the accurate sum is parity), and 0xE8 three-input
  // majority (the accurate carry).
  switch (truth) {
    case 0x00:
      lut.kind = SlicedLut::Kind::kConstFalse;
      return lut;
    case 0xFF:
      lut.kind = SlicedLut::Kind::kConstTrue;
      return lut;
    case 0xF0:
      lut.kind = SlicedLut::Kind::kA;
      return lut;
    case 0xCC:
      lut.kind = SlicedLut::Kind::kB;
      return lut;
    case 0xAA:
      lut.kind = SlicedLut::Kind::kC;
      return lut;
    case 0x0F:
      lut.kind = SlicedLut::Kind::kNotA;
      return lut;
    case 0x33:
      lut.kind = SlicedLut::Kind::kNotB;
      return lut;
    case 0x55:
      lut.kind = SlicedLut::Kind::kNotC;
      return lut;
    case 0x3C:
      lut.kind = SlicedLut::Kind::kXorAB;
      return lut;
    case 0xC3:
      lut.kind = SlicedLut::Kind::kXnorAB;
      return lut;
    case 0x5A:
      lut.kind = SlicedLut::Kind::kXorAC;
      return lut;
    case 0xA5:
      lut.kind = SlicedLut::Kind::kXnorAC;
      return lut;
    case 0x66:
      lut.kind = SlicedLut::Kind::kXorBC;
      return lut;
    case 0x99:
      lut.kind = SlicedLut::Kind::kXnorBC;
      return lut;
    case 0x96:
      lut.kind = SlicedLut::Kind::kXor3;
      return lut;
    case 0x69:
      lut.kind = SlicedLut::Kind::kXnor3;
      return lut;
    case 0xE8:
      lut.kind = SlicedLut::Kind::kMaj3;
      return lut;
    default:
      break;
  }

  // Quine–McCluskey, brute force (3 variables): collect every product
  // term that implies the function, keep the prime (maximal) ones, then
  // take the smallest subset covering the on-set exactly.
  std::vector<Implicant> valid;
  for (std::uint8_t sa = 0; sa < 3; ++sa) {
    for (std::uint8_t sb = 0; sb < 3; ++sb) {
      for (std::uint8_t sc = 0; sc < 3; ++sc) {
        if (sa == 0 && sb == 0 && sc == 0) continue;  // covers everything
        const std::uint8_t cover = coverage(sa, sb, sc);
        if ((cover & static_cast<std::uint8_t>(~truth)) == 0) {
          valid.push_back({cover, sa, sb, sc});
        }
      }
    }
  }
  std::vector<Implicant> primes;
  for (const Implicant& imp : valid) {
    bool maximal = true;
    for (const Implicant& other : valid) {
      if (other.cover != imp.cover &&
          (imp.cover & other.cover) == imp.cover) {
        maximal = false;
        break;
      }
    }
    if (maximal) primes.push_back(imp);
  }

  // Exhaustive minimum cover over the prime implicants (at most a dozen
  // candidates, so 2^|primes| subsets are nothing).
  const std::uint32_t subsets = 1U << primes.size();
  std::uint32_t best_subset = 0;
  int best_size = -1;
  for (std::uint32_t subset = 1; subset < subsets; ++subset) {
    const int size = std::popcount(subset);
    if (best_size >= 0 && size >= best_size) continue;
    std::uint8_t cover = 0;
    for (std::size_t i = 0; i < primes.size(); ++i) {
      if ((subset >> i) & 1U) cover |= primes[i].cover;
    }
    if (cover == truth) {
      best_subset = subset;
      best_size = size;
    }
  }

  lut.kind = SlicedLut::Kind::kSop;
  for (std::size_t i = 0; i < primes.size(); ++i) {
    if ((best_subset >> i) & 1U) {
      lut.terms[lut.term_count++] = make_term(primes[i]);
    }
  }
  return lut;
}

void transpose64(std::array<std::uint64_t, 64>& m) noexcept {
  // Hacker's Delight 7-3 recursive block swap, oriented so that the
  // transposed row i holds bit i of every original row: at each scale j
  // the high-j bits of row k trade places with the low-j bits of row
  // k + j.
  std::uint64_t mask = 0x0000'0000'FFFF'FFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

BitSlicedKernel::BitSlicedKernel(const multibit::AdderChain& chain) {
  stages_.reserve(chain.width());
  truths_.reserve(chain.width());
  for (const adders::AdderCell& cell : chain.stages()) {
    std::uint8_t sum_truth = 0;
    std::uint8_t carry_truth = 0;
    std::uint8_t success_truth = 0;
    for (std::uint8_t row = 0; row < adders::AdderCell::kRows; ++row) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1U << row);
      if (cell.rows()[row].sum) sum_truth |= bit;
      if (cell.rows()[row].carry) carry_truth |= bit;
      if (cell.row_is_success(row)) success_truth |= bit;
    }
    stages_.push_back(Stage{compile_lut(sum_truth), compile_lut(carry_truth),
                            compile_lut(success_truth)});
    truths_.push_back(detail::StageTruth{sum_truth, carry_truth,
                                         success_truth});
  }
}

BitSlicedKernel::Result BitSlicedKernel::run_packed(
    const std::uint64_t* a_words, const std::uint64_t* b_words,
    std::uint64_t cin_word, std::uint64_t lane_mask) const noexcept {
  Result result;
  result.lane_mask = lane_mask;
  result.first_failed.fill(-1);

  // Per-bit value planes: row i collects stage i's approximate / exact
  // sum word, row n the carry-out words, rows above stay zero.  One
  // transpose per plane at the end turns them into per-lane numeric
  // values, replacing the old per-stage scatter of differing bits into a
  // per-lane error array (a data-dependent loop iteration per error bit
  // per stage — the kernel hotspot on error-dense cells).
  std::array<std::uint64_t, 64> approx{};
  std::array<std::uint64_t, 64> exact{};
  // Stage i's newly-failed lanes; folded into first_failed after the
  // ripple loop so the fold can run as masked vector blends.
  std::array<std::uint64_t, 64> failed_masks;

  std::uint64_t carry = cin_word;        // the possibly-corrupted carry
  std::uint64_t exact_carry = cin_word;  // the accurate-FA reference carry
  std::uint64_t ok = lane_mask;          // lanes with no failed stage yet
  std::uint64_t sum_diff = 0;

  const std::size_t n = stages_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Stage& stage = stages_[i];
    const std::uint64_t a = a_words[i];
    const std::uint64_t b = b_words[i];

    const std::uint64_t sum = stage.sum.eval(a, b, carry);
    const std::uint64_t success = stage.success.eval(a, b, carry);
    const std::uint64_t next_carry = stage.carry.eval(a, b, carry);

    // Success is judged on the stage's *actual* inputs (including the
    // corrupted carry), exactly as evaluate_traced does.
    failed_masks[i] = ok & ~success;
    ok &= success;

    // The exact reference ripples alongside: parity sum, majority carry.
    const std::uint64_t exact_sum = a ^ b ^ exact_carry;
    const std::uint64_t next_exact = (a & b) | (exact_carry & (a | b));

    sum_diff |= (sum ^ exact_sum) & lane_mask;
    approx[i] = sum;
    exact[i] = exact_sum;

    carry = next_carry;
    exact_carry = next_exact;
  }

  // The carry-out is bit n of the numeric value (AddResult::value).
  approx[n] = carry;
  exact[n] = exact_carry;
  const std::uint64_t carry_diff = (carry ^ exact_carry) & lane_mask;

  result.sum_bits_error_mask = sum_diff;
  result.value_error_mask = sum_diff | carry_diff;
  result.stage_fail_mask = lane_mask & ~ok;
  if (result.stage_fail_mask != 0) {
    detail::scatter_first_failed(failed_masks.data(), n, result.first_failed);
  }
  if (result.value_error_mask != 0) {
    detail::finalize_errors(approx, exact, result.value_error_mask,
                            result.error);
  } else {
    result.error.fill(0);
  }
  return result;
}

void BitSlicedKernel::run_packed_group(const std::uint64_t* a_words,
                                       const std::uint64_t* b_group,
                                       std::uint64_t cin_word,
                                       Result* results) const noexcept {
  if (transpose64_accelerated()) {
    detail::run_packed_group_zmm(truths_.data(), stages_.size(), a_words,
                                 b_group, cin_word, results);
    return;
  }
  // Portable fallback: peel the stage-major group back into per-batch
  // lane words and run each batch through the single-batch kernel.
  const std::size_t n = stages_.size();
  std::array<std::uint64_t, 64> b_words;
  for (std::size_t j = 0; j < kGroupBatches; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      b_words[i] = b_group[kGroupBatches * i + j];
    }
    results[j] = run_packed(a_words, b_words.data(), cin_word, ~0ULL);
  }
}

BitSlicedKernel::Result BitSlicedKernel::run(
    const std::uint64_t* a_lanes, const std::uint64_t* b_lanes,
    std::uint64_t cin_word, std::uint64_t lane_mask) const noexcept {
  std::array<std::uint64_t, 64> a_words;
  std::array<std::uint64_t, 64> b_words;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    a_words[lane] = a_lanes[lane];
    b_words[lane] = b_lanes[lane];
  }
  transpose64_fast(a_words);
  transpose64_fast(b_words);
  return run_packed(a_words.data(), b_words.data(), cin_word, lane_mask);
}

}  // namespace sealpaa::sim

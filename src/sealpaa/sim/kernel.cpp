#include "sealpaa/sim/kernel.hpp"

#include <stdexcept>
#include <string>

namespace sealpaa::sim {

std::string_view kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kBitSliced:
      return "bitsliced";
  }
  throw std::invalid_argument("sim::kernel_name: unregistered kernel");
}

Kernel parse_kernel(std::string_view name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "bitsliced") return Kernel::kBitSliced;
  throw std::invalid_argument("unknown kernel '" + std::string(name) +
                              "' (valid: scalar, bitsliced)");
}

}  // namespace sealpaa::sim

// Simulation-kernel selection shared by every simulator backend.
//
// The scalar kernel walks AdderChain::evaluate_traced one stage and one
// sample at a time and is the reference oracle; the bit-sliced kernel
// (sim/bitsliced.hpp) evaluates 64 packed input vectors per pass and is
// the default on every hot path.  Both must produce bit-identical
// metrics — the differential suite enforces it.
#pragma once

#include <string_view>

namespace sealpaa::sim {

/// How a simulator evaluates the adder chain on its input cases.
enum class Kernel {
  kScalar,     // one (a, b, cin) case at a time via evaluate_traced
  kBitSliced,  // 64 packed cases per pass over transposed lane words
};

/// Stable CLI name of `kernel` ("scalar" / "bitsliced").
[[nodiscard]] std::string_view kernel_name(Kernel kernel);

/// Parses a `--kernel=` value; throws std::invalid_argument listing the
/// valid names when `name` is not one of them.
[[nodiscard]] Kernel parse_kernel(std::string_view name);

}  // namespace sealpaa::sim

#include "sealpaa/sim/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>

namespace sealpaa::sim {

void ErrorMetrics::add(std::uint64_t approx_value, std::uint64_t exact_value,
                       bool stage_success) noexcept {
  ++cases_;
  if (!stage_success) ++stage_failures_;
  const std::int64_t error = static_cast<std::int64_t>(approx_value) -
                             static_cast<std::int64_t>(exact_value);
  if (error != 0) ++value_errors_;
  const double e = static_cast<double>(error);
  sum_error_ += e;
  sum_abs_error_ += std::fabs(e);
  sum_sq_error_ += e * e;
  if (worse_error(error, worst_case_)) worst_case_ = error;
}

void ErrorMetrics::add_batch(std::uint64_t lane_mask,
                             std::uint64_t value_error_mask,
                             std::uint64_t stage_fail_mask,
                             const std::array<std::int64_t, 64>&
                                 error) noexcept {
  cases_ += static_cast<std::uint64_t>(std::popcount(lane_mask));
  value_errors_ +=
      static_cast<std::uint64_t>(std::popcount(value_error_mask));
  stage_failures_ +=
      static_cast<std::uint64_t>(std::popcount(stage_fail_mask));
  for (std::uint64_t w = value_error_mask; w != 0; w &= w - 1) {
    const std::int64_t e = error[static_cast<std::size_t>(std::countr_zero(w))];
    const double d = static_cast<double>(e);
    sum_error_ += d;
    sum_abs_error_ += std::fabs(d);
    sum_sq_error_ += d * d;
    if (worse_error(e, worst_case_)) worst_case_ = e;
  }
}

double ErrorMetrics::error_rate() const noexcept {
  return cases_ == 0 ? 0.0
                     : static_cast<double>(value_errors_) /
                           static_cast<double>(cases_);
}

double ErrorMetrics::stage_failure_rate() const noexcept {
  return cases_ == 0 ? 0.0
                     : static_cast<double>(stage_failures_) /
                           static_cast<double>(cases_);
}

double ErrorMetrics::mean_error() const noexcept {
  return cases_ == 0 ? 0.0 : sum_error_ / static_cast<double>(cases_);
}

double ErrorMetrics::mean_abs_error() const noexcept {
  return cases_ == 0 ? 0.0 : sum_abs_error_ / static_cast<double>(cases_);
}

double ErrorMetrics::mean_squared_error() const noexcept {
  return cases_ == 0 ? 0.0 : sum_sq_error_ / static_cast<double>(cases_);
}

void ErrorMetrics::merge(const ErrorMetrics& other) noexcept {
  cases_ += other.cases_;
  value_errors_ += other.value_errors_;
  stage_failures_ += other.stage_failures_;
  sum_error_ += other.sum_error_;
  sum_abs_error_ += other.sum_abs_error_;
  sum_sq_error_ += other.sum_sq_error_;
  if (worse_error(other.worst_case_, worst_case_)) {
    worst_case_ = other.worst_case_;
  }
}

}  // namespace sealpaa::sim

#include "sealpaa/multiplier/array_multiplier.hpp"

#include <stdexcept>
#include <vector>

#include "sealpaa/multibit/csa.hpp"

namespace sealpaa::multiplier {

ApproxMultiplier::ApproxMultiplier(std::size_t operand_width,
                                   adders::AdderCell cell, ReductionMode mode)
    : width_(operand_width),
      cell_(std::move(cell)),
      mode_(mode),
      accumulator_(multibit::AdderChain::homogeneous(
          cell_, 2 * (operand_width == 0 ? 1 : operand_width))) {
  if (operand_width < 1 || operand_width > 31) {
    throw std::invalid_argument(
        "ApproxMultiplier: operand width must be in [1, 31]");
  }
}

std::uint64_t ApproxMultiplier::multiply(std::uint64_t a,
                                         std::uint64_t b) const {
  const std::size_t pw = product_width();
  a = multibit::mask_width(a, width_);
  b = multibit::mask_width(b, width_);

  // Hardware-faithful array: all W partial products (pp_i = (a AND b_i)
  // << i) flow through the accumulation adders, zero rows included — an
  // approximate array really does "compute" its zeros, which is why
  // 0 * x can come out nonzero for aggressive cells.
  std::vector<std::uint64_t> partials;
  partials.reserve(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    partials.push_back(((b >> i) & 1ULL) != 0 ? (a << i) : 0ULL);
  }

  if (mode_ == ReductionMode::RippleAccumulate) {
    std::uint64_t acc = partials.front();
    for (std::size_t i = 1; i < partials.size(); ++i) {
      acc = accumulator_.evaluate(acc, partials[i], false).sum_bits;
    }
    return multibit::mask_width(acc, pw);
  }

  const multibit::CarrySaveAdder csa{cell_, accumulator_};
  return csa.accumulate(partials);
}

std::int64_t ApproxMultiplier::multiply_signed(std::int64_t a,
                                               std::int64_t b) const {
  const std::uint64_t limit = 1ULL << width_;
  const std::uint64_t mag_a =
      static_cast<std::uint64_t>(a < 0 ? -a : a);
  const std::uint64_t mag_b =
      static_cast<std::uint64_t>(b < 0 ? -b : b);
  if (mag_a >= limit || mag_b >= limit) {
    throw std::domain_error(
        "ApproxMultiplier::multiply_signed: magnitude exceeds operand "
        "width");
  }
  const std::int64_t product =
      static_cast<std::int64_t>(multiply(mag_a, mag_b));
  return (a < 0) != (b < 0) ? -product : product;
}

double MultiplierReport::normalized_med() const noexcept {
  if (max_product == 0) return 0.0;
  return metrics.mean_abs_error() / static_cast<double>(max_product);
}

MultiplierReport measure_multiplier(const ApproxMultiplier& multiplier,
                                    std::uint64_t samples,
                                    std::uint64_t seed) {
  MultiplierReport report;
  report.samples = samples;
  const std::size_t w = multiplier.operand_width();
  const std::uint64_t mask = (1ULL << w) - 1ULL;
  report.max_product = mask * mask;
  prob::Xoshiro256StarStar rng(seed);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const std::uint64_t approx = multiplier.multiply(a, b);
    const std::uint64_t exact = a * b;
    report.metrics.add(approx, exact, approx == exact);
  }
  return report;
}

MultiplierReport exhaustive_multiplier(const ApproxMultiplier& multiplier,
                                       std::size_t max_width) {
  const std::size_t w = multiplier.operand_width();
  if (w > max_width) {
    throw std::invalid_argument(
        "exhaustive_multiplier: width exceeds the sweep guard");
  }
  MultiplierReport report;
  const std::uint64_t limit = 1ULL << w;
  report.max_product = (limit - 1) * (limit - 1);
  report.samples = limit * limit;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const std::uint64_t approx = multiplier.multiply(a, b);
      const std::uint64_t exact = a * b;
      report.metrics.add(approx, exact, approx == exact);
    }
  }
  return report;
}

std::uint64_t approx_dot_product(const std::vector<std::uint64_t>& values,
                                 const std::vector<std::uint64_t>& weights,
                                 const ApproxMultiplier& multiplier,
                                 const multibit::AdderChain& accumulator) {
  if (values.size() != weights.size()) {
    throw std::invalid_argument("approx_dot_product: size mismatch");
  }
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint64_t product = multiplier.multiply(values[i], weights[i]);
    acc = accumulator
              .evaluate(acc, multibit::mask_width(product,
                                                  accumulator.width()),
                        false)
              .sum_bits;
  }
  return acc;
}

}  // namespace sealpaa::multiplier

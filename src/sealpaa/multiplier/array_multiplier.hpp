// Approximate array multiplication built from adder cells — the
// accelerator-datapath scenario of the paper's §1.1 ("the analysis
// complexity will further aggravate when these adders form an
// accelerator data path") and the architectural-space exploration of
// multipliers it cites ([16]).
//
// A WxW multiplier forms W partial products and accumulates them with
// 2W-bit adders; the accumulation adders are where the approximate cells
// live.  Two reduction topologies are provided: sequential ripple
// accumulation and a carry-save tree with a final ripple merge.
#pragma once

#include <cstdint>

#include "sealpaa/adders/cell.hpp"
#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/prob/rng.hpp"
#include "sealpaa/sim/metrics.hpp"

namespace sealpaa::multiplier {

/// Partial-product reduction topology.
enum class ReductionMode {
  RippleAccumulate,  // fold partial products one by one through a chain
  CarrySaveTree,     // 3:2 compressor tree, then one final merge chain
};

/// A WxW -> 2W-bit unsigned multiplier with configurable accumulation
/// cells.
class ApproxMultiplier {
 public:
  /// `operand_width` in [1, 31] (product must fit 62 bits).  All
  /// accumulation adders use `cell`; pass adders::accurate() for an
  /// exact reference.
  ApproxMultiplier(std::size_t operand_width, adders::AdderCell cell,
                   ReductionMode mode = ReductionMode::RippleAccumulate);

  [[nodiscard]] std::uint64_t multiply(std::uint64_t a,
                                       std::uint64_t b) const;

  /// Signed multiply in sign-magnitude style: the approximate array
  /// multiplies the magnitudes, the sign is applied exactly afterwards.
  /// Throws std::domain_error when |a| or |b| does not fit the operand
  /// width.
  [[nodiscard]] std::int64_t multiply_signed(std::int64_t a,
                                             std::int64_t b) const;

  [[nodiscard]] std::size_t operand_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t product_width() const noexcept {
    return 2 * width_;
  }
  [[nodiscard]] const adders::AdderCell& cell() const noexcept {
    return cell_;
  }
  [[nodiscard]] ReductionMode mode() const noexcept { return mode_; }

 private:
  std::size_t width_;
  adders::AdderCell cell_;
  ReductionMode mode_;
  multibit::AdderChain accumulator_;
};

/// Monte Carlo quality report for a multiplier against exact products.
struct MultiplierReport {
  sim::ErrorMetrics metrics;
  std::uint64_t samples = 0;
  /// Normalised mean error distance: MED / max exact product.
  [[nodiscard]] double normalized_med() const noexcept;
  std::uint64_t max_product = 0;
};

/// Samples uniformly random operand pairs and compares against exact
/// multiplication.  Deterministic for a given seed.
[[nodiscard]] MultiplierReport measure_multiplier(
    const ApproxMultiplier& multiplier, std::uint64_t samples,
    std::uint64_t seed = 0x5ea1'0123ULL);

/// Exhaustive sweep over all operand pairs (guarded to small widths).
[[nodiscard]] MultiplierReport exhaustive_multiplier(
    const ApproxMultiplier& multiplier, std::size_t max_width = 8);

/// Accelerator MAC: dot product of `values` and `weights` where every
/// multiply uses `multiplier` and every accumulation the `accumulator`
/// chain (modulo 2^accumulator-width).
[[nodiscard]] std::uint64_t approx_dot_product(
    const std::vector<std::uint64_t>& values,
    const std::vector<std::uint64_t>& weights,
    const ApproxMultiplier& multiplier,
    const multibit::AdderChain& accumulator);

}  // namespace sealpaa::multiplier

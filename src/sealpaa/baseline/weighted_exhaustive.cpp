#include "sealpaa/baseline/weighted_exhaustive.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"
#include "sealpaa/sim/bitsliced.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::baseline {

namespace {

// Partial sums of one shard of the enumeration.  Kahan compensation is
// kept per shard; the ordered reduction then folds the compensated shard
// values with a second Kahan pass, so the totals stay honest to the last
// ulp and are bit-identical for every thread count.
struct EnumerationShard {
  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;
  std::int64_t worst_case_error = 0;
  std::map<std::int64_t, double> error_distribution;
  std::uint64_t lane_batches = 0;
  std::uint64_t masked_lanes = 0;
};

struct EnumerationTotals {
  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;
  std::int64_t worst_case_error = 0;
  std::map<std::int64_t, double> error_distribution;
  std::uint64_t lane_batches = 0;
  std::uint64_t masked_lanes = 0;
};

// Scores one weighted case outcome into `shard`.  Both kernels funnel
// through this single accumulator, so the Kahan-add sequence — and with
// it every last ulp of the report — is identical whichever backend
// produced the outcome flags.
void accumulate_outcome(bool stage_success, bool value_correct,
                        bool sum_bits_correct, std::int64_t error,
                        double weight, EnumerationShard& shard) {
  if (stage_success) shard.stage_success.add(weight);
  if (value_correct) shard.value_correct.add(weight);
  if (sum_bits_correct) shard.sum_bits_correct.add(weight);
  shard.mean_error.add(weight * static_cast<double>(error));
  shard.mean_abs.add(weight * std::abs(static_cast<double>(error)));
  shard.mean_sq.add(weight * static_cast<double>(error) *
                    static_cast<double>(error));
  if (sim::worse_error(error, shard.worst_case_error)) {
    shard.worst_case_error = error;
  }
  shard.error_distribution[error] += weight;
}

// Scalar path: one traced walk per weighted (a, b, cin) case.
void accumulate_case(const multibit::AdderChain& chain, std::uint64_t a,
                     std::uint64_t b, bool cin, double weight, std::size_t n,
                     EnumerationShard& shard) {
  const multibit::TracedAddResult traced = chain.evaluate_traced(a, b, cin);
  const multibit::AddResult exact = multibit::exact_add(a, b, cin, n);
  const std::uint64_t approx_value = traced.outputs.value(n);
  const std::uint64_t exact_value = exact.value(n);
  const std::int64_t error = static_cast<std::int64_t>(approx_value) -
                             static_cast<std::int64_t>(exact_value);
  accumulate_outcome(traced.all_stages_success, approx_value == exact_value,
                     traced.outputs.sum_bits == exact.sum_bits, error, weight,
                     shard);
}

// Scores the active lanes of one kernel batch in ascending lane order —
// the same (b ascending, cin inner) case order as the scalar loops.
// Zero-weight lanes are skipped exactly where the scalar path `continue`s.
void accumulate_lanes(const sim::BitSlicedKernel::Result& result,
                      const std::array<double, 64>& weights,
                      std::uint64_t count, EnumerationShard& shard) {
  for (std::uint64_t lane = 0; lane < count; ++lane) {
    const double weight = weights[lane];
    if (weight == 0.0) continue;
    const std::uint64_t bit = 1ULL << lane;
    accumulate_outcome((result.stage_fail_mask & bit) == 0,
                       (result.value_error_mask & bit) == 0,
                       (result.sum_bits_error_mask & bit) == 0,
                       result.error[static_cast<std::size_t>(lane)], weight,
                       shard);
  }
}

// Bit-sliced path: sweeps the whole (b, cin) sub-space for one `a`, 64
// lanes per kernel pass, with per-lane weights supplied by
// `weight_ab_of(b)` (computed in the same order and with the same
// arithmetic as the scalar loops).  Lane layout matches the exhaustive
// sweep: lane l covers (b = b_base + (l >> 1), cin = l & 1).
template <typename WeightAb>
void enumerate_b_space_bitsliced(const sim::BitSlicedKernel& kernel,
                                 std::uint64_t a, const WeightAb& weight_ab_of,
                                 double p_cin0, double p_cin1,
                                 EnumerationShard& shard) {
  const std::size_t n = kernel.width();
  std::array<std::uint64_t, 64> a_words{};
  std::array<std::uint64_t, 64> b_words{};
  std::array<double, 64> weights{};
  const std::uint64_t cin_word = sim::kLaneCounterBit[0];
  for (std::size_t i = 0; i < n; ++i) {
    a_words[i] = ((a >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
  }

  if (n + 1 >= 6) {
    const std::uint64_t batches_per_a = 1ULL << (n + 1 - 6);
    for (std::size_t i = 0; i < 5; ++i) {
      b_words[i] = sim::kLaneCounterBit[i + 1];
    }
    for (std::uint64_t batch = 0; batch < batches_per_a; ++batch) {
      const std::uint64_t b_base = batch << 5;
      for (std::size_t i = 5; i < n; ++i) {
        b_words[i] = ((b_base >> i) & 1ULL) != 0 ? ~0ULL : 0ULL;
      }
      bool any = false;
      for (std::uint64_t k = 0; k < 32; ++k) {
        const double weight_ab = weight_ab_of(b_base + k);
        weights[2 * k] = weight_ab * p_cin0;
        weights[2 * k + 1] = weight_ab * p_cin1;
        any = any || weights[2 * k] != 0.0 || weights[2 * k + 1] != 0.0;
      }
      // An all-zero-weight batch contributes nothing — the scalar path
      // never evaluates those cases either.
      if (!any) continue;
      const sim::BitSlicedKernel::Result result =
          kernel.run_packed(a_words.data(), b_words.data(), cin_word, ~0ULL);
      accumulate_lanes(result, weights, 64, shard);
      ++shard.lane_batches;
    }
  } else {
    // Width < 5: the whole (b, cin) sub-space fits one partial batch.
    const std::uint64_t inner = 1ULL << (n + 1);
    const std::uint64_t lane_mask = (1ULL << inner) - 1ULL;
    for (std::size_t i = 0; i < n; ++i) {
      b_words[i] = sim::kLaneCounterBit[i + 1];
    }
    bool any = false;
    for (std::uint64_t k = 0; k < (inner >> 1); ++k) {
      const double weight_ab = weight_ab_of(k);
      weights[2 * k] = weight_ab * p_cin0;
      weights[2 * k + 1] = weight_ab * p_cin1;
      any = any || weights[2 * k] != 0.0 || weights[2 * k + 1] != 0.0;
    }
    if (!any) return;
    const sim::BitSlicedKernel::Result result =
        kernel.run_packed(a_words.data(), b_words.data(), cin_word, lane_mask);
    accumulate_lanes(result, weights, inner, shard);
    ++shard.lane_batches;
    shard.masked_lanes += 64 - inner;
  }
}

// Ordered merge: shards arrive in ascending `a`-range order; the
// worst-case comparator is itself order-independent (sim::worse_error),
// and the per-key distribution additions resolve exactly as in a
// sequential sweep.
void merge_shard(EnumerationTotals& totals, EnumerationShard&& shard) {
  totals.stage_success.add(shard.stage_success.value());
  totals.value_correct.add(shard.value_correct.value());
  totals.sum_bits_correct.add(shard.sum_bits_correct.value());
  totals.mean_error.add(shard.mean_error.value());
  totals.mean_abs.add(shard.mean_abs.value());
  totals.mean_sq.add(shard.mean_sq.value());
  if (sim::worse_error(shard.worst_case_error, totals.worst_case_error)) {
    totals.worst_case_error = shard.worst_case_error;
  }
  for (const auto& [error, weight] : shard.error_distribution) {
    totals.error_distribution[error] += weight;
  }
  totals.lane_batches += shard.lane_batches;
  totals.masked_lanes += shard.masked_lanes;
}

ExhaustiveReport report_from(EnumerationTotals&& totals,
                             std::uint64_t assignments, sim::Kernel kernel,
                             util::ShardTimings&& timings) {
  ExhaustiveReport report;
  report.assignments = assignments;
  report.p_stage_success = totals.stage_success.value();
  report.p_value_correct = totals.value_correct.value();
  report.p_sum_bits_correct = totals.sum_bits_correct.value();
  report.mean_error = totals.mean_error.value();
  report.mean_abs_error = totals.mean_abs.value();
  report.mean_squared_error = totals.mean_sq.value();
  report.worst_case_error = totals.worst_case_error;
  report.error_distribution = std::move(totals.error_distribution);
  report.kernel = kernel;
  report.lane_batches = totals.lane_batches;
  report.masked_lanes = totals.masked_lanes;
  report.shard_timings = std::move(timings);
  return report;
}

// Shard grain along the `a` operand; a function of the width only so the
// enumeration is bit-stable across thread counts.
std::uint64_t enumeration_grain(std::uint64_t limit) {
  return std::max<std::uint64_t>(1, limit / 64);
}

}  // namespace

ExhaustiveReport WeightedExhaustive::analyze(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::size_t max_width, unsigned threads, sim::Kernel kernel) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive: width " + std::to_string(n) +
        " exceeds the enumeration guard (" + std::to_string(max_width) + ")");
  }

  // Precompute per-bit probabilities in both polarities so the inner loop
  // is multiply-only.
  std::vector<double> pa1(n);
  std::vector<double> pa0(n);
  std::vector<double> pb1(n);
  std::vector<double> pb0(n);
  for (std::size_t i = 0; i < n; ++i) {
    pa1[i] = profile.p_a(i);
    pa0[i] = 1.0 - pa1[i];
    pb1[i] = profile.p_b(i);
    pb0[i] = 1.0 - pb1[i];
  }
  const double p_cin1 = profile.p_cin();
  const double p_cin0 = 1.0 - p_cin1;

  const std::uint64_t limit = 1ULL << n;
  const sim::BitSlicedKernel sliced(chain);
  util::ShardTimings timings;
  EnumerationTotals totals = util::with_pool(threads, [&](util::ThreadPool&
                                                              pool) {
    return util::parallel_map_reduce(
        pool, 0, limit, enumeration_grain(limit), EnumerationTotals{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          EnumerationShard shard;
          for (std::uint64_t a = a_begin; a < a_end; ++a) {
            double weight_a = 1.0;
            for (std::size_t i = 0; i < n; ++i) {
              weight_a *= ((a >> i) & 1ULL) != 0 ? pa1[i] : pa0[i];
            }
            if (weight_a == 0.0) continue;
            if (kernel == sim::Kernel::kBitSliced) {
              enumerate_b_space_bitsliced(
                  sliced, a,
                  [&](std::uint64_t b) {
                    double weight_ab = weight_a;
                    for (std::size_t i = 0; i < n; ++i) {
                      weight_ab *= ((b >> i) & 1ULL) != 0 ? pb1[i] : pb0[i];
                    }
                    return weight_ab;
                  },
                  p_cin0, p_cin1, shard);
              continue;
            }
            for (std::uint64_t b = 0; b < limit; ++b) {
              double weight_ab = weight_a;
              for (std::size_t i = 0; i < n; ++i) {
                weight_ab *= ((b >> i) & 1ULL) != 0 ? pb1[i] : pb0[i];
              }
              if (weight_ab == 0.0) continue;
              for (int cin = 0; cin < 2; ++cin) {
                const double weight = weight_ab * (cin != 0 ? p_cin1 : p_cin0);
                if (weight == 0.0) continue;
                accumulate_case(chain, a, b, cin != 0, weight, n, shard);
              }
            }
          }
          return shard;
        },
        [](EnumerationTotals& acc, EnumerationShard&& shard) {
          merge_shard(acc, std::move(shard));
        },
        &timings);
  });

  return report_from(std::move(totals), limit * limit * 2, kernel,
                     std::move(timings));
}

ExhaustiveReport WeightedExhaustive::analyze_joint(
    const multibit::AdderChain& chain,
    const multibit::JointInputProfile& profile, std::size_t max_width,
    unsigned threads, sim::Kernel kernel) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: width exceeds the guard");
  }
  const double p_cin1 = profile.p_cin();
  const double p_cin0 = 1.0 - p_cin1;

  const std::uint64_t limit = 1ULL << n;
  const sim::BitSlicedKernel sliced(chain);
  util::ShardTimings timings;
  EnumerationTotals totals = util::with_pool(threads, [&](util::ThreadPool&
                                                              pool) {
    return util::parallel_map_reduce(
        pool, 0, limit, enumeration_grain(limit), EnumerationTotals{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          EnumerationShard shard;
          for (std::uint64_t a = a_begin; a < a_end; ++a) {
            if (kernel == sim::Kernel::kBitSliced) {
              enumerate_b_space_bitsliced(
                  sliced, a,
                  [&](std::uint64_t b) {
                    double weight_ab = 1.0;
                    for (std::size_t i = 0; i < n; ++i) {
                      const std::size_t idx =
                          (((a >> i) & 1ULL) << 1) | ((b >> i) & 1ULL);
                      weight_ab *= profile.joint(i)[idx];
                    }
                    return weight_ab;
                  },
                  p_cin0, p_cin1, shard);
              continue;
            }
            for (std::uint64_t b = 0; b < limit; ++b) {
              double weight_ab = 1.0;
              for (std::size_t i = 0; i < n; ++i) {
                const std::size_t idx =
                    (((a >> i) & 1ULL) << 1) | ((b >> i) & 1ULL);
                weight_ab *= profile.joint(i)[idx];
              }
              if (weight_ab == 0.0) continue;
              for (int cin = 0; cin < 2; ++cin) {
                const double weight = weight_ab * (cin != 0 ? p_cin1 : p_cin0);
                if (weight == 0.0) continue;
                accumulate_case(chain, a, b, cin != 0, weight, n, shard);
              }
            }
          }
          return shard;
        },
        [](EnumerationTotals& acc, EnumerationShard&& shard) {
          merge_shard(acc, std::move(shard));
        },
        &timings);
  });

  return report_from(std::move(totals), limit * limit * 2, kernel,
                     std::move(timings));
}

}  // namespace sealpaa::baseline

#include "sealpaa/baseline/weighted_exhaustive.hpp"

#include <cmath>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"

namespace sealpaa::baseline {

ExhaustiveReport WeightedExhaustive::analyze(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::size_t max_width) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive: width " + std::to_string(n) +
        " exceeds the enumeration guard (" + std::to_string(max_width) + ")");
  }

  // Precompute per-bit probabilities in both polarities so the inner loop
  // is multiply-only.
  std::vector<double> pa1(n);
  std::vector<double> pa0(n);
  std::vector<double> pb1(n);
  std::vector<double> pb0(n);
  for (std::size_t i = 0; i < n; ++i) {
    pa1[i] = profile.p_a(i);
    pa0[i] = 1.0 - pa1[i];
    pb1[i] = profile.p_b(i);
    pb0[i] = 1.0 - pb1[i];
  }

  ExhaustiveReport report;
  const std::uint64_t limit = 1ULL << n;
  report.assignments = limit * limit * 2;

  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;

  for (std::uint64_t a = 0; a < limit; ++a) {
    double weight_a = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight_a *= ((a >> i) & 1ULL) != 0 ? pa1[i] : pa0[i];
    }
    if (weight_a == 0.0) continue;
    for (std::uint64_t b = 0; b < limit; ++b) {
      double weight_ab = weight_a;
      for (std::size_t i = 0; i < n; ++i) {
        weight_ab *= ((b >> i) & 1ULL) != 0 ? pb1[i] : pb0[i];
      }
      if (weight_ab == 0.0) continue;
      for (int cin = 0; cin < 2; ++cin) {
        const double weight =
            weight_ab * (cin != 0 ? profile.p_cin() : 1.0 - profile.p_cin());
        if (weight == 0.0) continue;

        const multibit::TracedAddResult traced =
            chain.evaluate_traced(a, b, cin != 0);
        const multibit::AddResult exact =
            multibit::exact_add(a, b, cin != 0, n);

        if (traced.all_stages_success) stage_success.add(weight);
        const std::uint64_t approx_value = traced.outputs.value(n);
        const std::uint64_t exact_value = exact.value(n);
        if (approx_value == exact_value) value_correct.add(weight);
        if (traced.outputs.sum_bits == exact.sum_bits) {
          sum_bits_correct.add(weight);
        }

        const std::int64_t error = static_cast<std::int64_t>(approx_value) -
                                   static_cast<std::int64_t>(exact_value);
        mean_error.add(weight * static_cast<double>(error));
        mean_abs.add(weight * std::abs(static_cast<double>(error)));
        mean_sq.add(weight * static_cast<double>(error) *
                    static_cast<double>(error));
        if (std::llabs(error) > std::llabs(report.worst_case_error)) {
          report.worst_case_error = error;
        }
        report.error_distribution[error] += weight;
      }
    }
  }

  report.p_stage_success = stage_success.value();
  report.p_value_correct = value_correct.value();
  report.p_sum_bits_correct = sum_bits_correct.value();
  report.mean_error = mean_error.value();
  report.mean_abs_error = mean_abs.value();
  report.mean_squared_error = mean_sq.value();
  return report;
}

ExhaustiveReport WeightedExhaustive::analyze_joint(
    const multibit::AdderChain& chain,
    const multibit::JointInputProfile& profile, std::size_t max_width) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: width exceeds the guard");
  }

  ExhaustiveReport report;
  const std::uint64_t limit = 1ULL << n;
  report.assignments = limit * limit * 2;

  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;

  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      double weight_ab = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx =
            (((a >> i) & 1ULL) << 1) | ((b >> i) & 1ULL);
        weight_ab *= profile.joint(i)[idx];
      }
      if (weight_ab == 0.0) continue;
      for (int cin = 0; cin < 2; ++cin) {
        const double weight =
            weight_ab * (cin != 0 ? profile.p_cin() : 1.0 - profile.p_cin());
        if (weight == 0.0) continue;

        const multibit::TracedAddResult traced =
            chain.evaluate_traced(a, b, cin != 0);
        const multibit::AddResult exact =
            multibit::exact_add(a, b, cin != 0, n);

        if (traced.all_stages_success) stage_success.add(weight);
        const std::uint64_t approx_value = traced.outputs.value(n);
        const std::uint64_t exact_value = exact.value(n);
        if (approx_value == exact_value) value_correct.add(weight);
        if (traced.outputs.sum_bits == exact.sum_bits) {
          sum_bits_correct.add(weight);
        }
        const std::int64_t error = static_cast<std::int64_t>(approx_value) -
                                   static_cast<std::int64_t>(exact_value);
        mean_error.add(weight * static_cast<double>(error));
        mean_abs.add(weight * std::abs(static_cast<double>(error)));
        mean_sq.add(weight * static_cast<double>(error) *
                    static_cast<double>(error));
        if (std::llabs(error) > std::llabs(report.worst_case_error)) {
          report.worst_case_error = error;
        }
        report.error_distribution[error] += weight;
      }
    }
  }

  report.p_stage_success = stage_success.value();
  report.p_value_correct = value_correct.value();
  report.p_sum_bits_correct = sum_bits_correct.value();
  report.mean_error = mean_error.value();
  report.mean_abs_error = mean_abs.value();
  report.mean_squared_error = mean_sq.value();
  return report;
}

}  // namespace sealpaa::baseline

#include "sealpaa/baseline/weighted_exhaustive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"
#include "sealpaa/sim/metrics.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::baseline {

namespace {

// Partial sums of one shard of the enumeration.  Kahan compensation is
// kept per shard; the ordered reduction then folds the compensated shard
// values with a second Kahan pass, so the totals stay honest to the last
// ulp and are bit-identical for every thread count.
struct EnumerationShard {
  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;
  std::int64_t worst_case_error = 0;
  std::map<std::int64_t, double> error_distribution;
};

struct EnumerationTotals {
  prob::KahanSum stage_success;
  prob::KahanSum value_correct;
  prob::KahanSum sum_bits_correct;
  prob::KahanSum mean_error;
  prob::KahanSum mean_abs;
  prob::KahanSum mean_sq;
  std::int64_t worst_case_error = 0;
  std::map<std::int64_t, double> error_distribution;
};

// Scores one weighted (a, b, cin) case into `shard`.
void accumulate_case(const multibit::AdderChain& chain, std::uint64_t a,
                     std::uint64_t b, bool cin, double weight, std::size_t n,
                     EnumerationShard& shard) {
  const multibit::TracedAddResult traced = chain.evaluate_traced(a, b, cin);
  const multibit::AddResult exact = multibit::exact_add(a, b, cin, n);

  if (traced.all_stages_success) shard.stage_success.add(weight);
  const std::uint64_t approx_value = traced.outputs.value(n);
  const std::uint64_t exact_value = exact.value(n);
  if (approx_value == exact_value) shard.value_correct.add(weight);
  if (traced.outputs.sum_bits == exact.sum_bits) {
    shard.sum_bits_correct.add(weight);
  }

  const std::int64_t error = static_cast<std::int64_t>(approx_value) -
                             static_cast<std::int64_t>(exact_value);
  shard.mean_error.add(weight * static_cast<double>(error));
  shard.mean_abs.add(weight * std::abs(static_cast<double>(error)));
  shard.mean_sq.add(weight * static_cast<double>(error) *
                    static_cast<double>(error));
  if (sim::worse_error(error, shard.worst_case_error)) {
    shard.worst_case_error = error;
  }
  shard.error_distribution[error] += weight;
}

// Ordered merge: shards arrive in ascending `a`-range order; the
// worst-case comparator is itself order-independent (sim::worse_error),
// and the per-key distribution additions resolve exactly as in a
// sequential sweep.
void merge_shard(EnumerationTotals& totals, EnumerationShard&& shard) {
  totals.stage_success.add(shard.stage_success.value());
  totals.value_correct.add(shard.value_correct.value());
  totals.sum_bits_correct.add(shard.sum_bits_correct.value());
  totals.mean_error.add(shard.mean_error.value());
  totals.mean_abs.add(shard.mean_abs.value());
  totals.mean_sq.add(shard.mean_sq.value());
  if (sim::worse_error(shard.worst_case_error, totals.worst_case_error)) {
    totals.worst_case_error = shard.worst_case_error;
  }
  for (const auto& [error, weight] : shard.error_distribution) {
    totals.error_distribution[error] += weight;
  }
}

ExhaustiveReport report_from(EnumerationTotals&& totals,
                             std::uint64_t assignments,
                             util::ShardTimings&& timings) {
  ExhaustiveReport report;
  report.assignments = assignments;
  report.p_stage_success = totals.stage_success.value();
  report.p_value_correct = totals.value_correct.value();
  report.p_sum_bits_correct = totals.sum_bits_correct.value();
  report.mean_error = totals.mean_error.value();
  report.mean_abs_error = totals.mean_abs.value();
  report.mean_squared_error = totals.mean_sq.value();
  report.worst_case_error = totals.worst_case_error;
  report.error_distribution = std::move(totals.error_distribution);
  report.shard_timings = std::move(timings);
  return report;
}

// Shard grain along the `a` operand; a function of the width only so the
// enumeration is bit-stable across thread counts.
std::uint64_t enumeration_grain(std::uint64_t limit) {
  return std::max<std::uint64_t>(1, limit / 64);
}

}  // namespace

ExhaustiveReport WeightedExhaustive::analyze(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::size_t max_width, unsigned threads) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive: width " + std::to_string(n) +
        " exceeds the enumeration guard (" + std::to_string(max_width) + ")");
  }

  // Precompute per-bit probabilities in both polarities so the inner loop
  // is multiply-only.
  std::vector<double> pa1(n);
  std::vector<double> pa0(n);
  std::vector<double> pb1(n);
  std::vector<double> pb0(n);
  for (std::size_t i = 0; i < n; ++i) {
    pa1[i] = profile.p_a(i);
    pa0[i] = 1.0 - pa1[i];
    pb1[i] = profile.p_b(i);
    pb0[i] = 1.0 - pb1[i];
  }

  const std::uint64_t limit = 1ULL << n;
  util::ShardTimings timings;
  EnumerationTotals totals = util::with_pool(threads, [&](util::ThreadPool&
                                                              pool) {
    return util::parallel_map_reduce(
        pool, 0, limit, enumeration_grain(limit), EnumerationTotals{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          EnumerationShard shard;
          for (std::uint64_t a = a_begin; a < a_end; ++a) {
            double weight_a = 1.0;
            for (std::size_t i = 0; i < n; ++i) {
              weight_a *= ((a >> i) & 1ULL) != 0 ? pa1[i] : pa0[i];
            }
            if (weight_a == 0.0) continue;
            for (std::uint64_t b = 0; b < limit; ++b) {
              double weight_ab = weight_a;
              for (std::size_t i = 0; i < n; ++i) {
                weight_ab *= ((b >> i) & 1ULL) != 0 ? pb1[i] : pb0[i];
              }
              if (weight_ab == 0.0) continue;
              for (int cin = 0; cin < 2; ++cin) {
                const double weight =
                    weight_ab *
                    (cin != 0 ? profile.p_cin() : 1.0 - profile.p_cin());
                if (weight == 0.0) continue;
                accumulate_case(chain, a, b, cin != 0, weight, n, shard);
              }
            }
          }
          return shard;
        },
        [](EnumerationTotals& acc, EnumerationShard&& shard) {
          merge_shard(acc, std::move(shard));
        },
        &timings);
  });

  return report_from(std::move(totals), limit * limit * 2, std::move(timings));
}

ExhaustiveReport WeightedExhaustive::analyze_joint(
    const multibit::AdderChain& chain,
    const multibit::JointInputProfile& profile, std::size_t max_width,
    unsigned threads) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "WeightedExhaustive::analyze_joint: width exceeds the guard");
  }

  const std::uint64_t limit = 1ULL << n;
  util::ShardTimings timings;
  EnumerationTotals totals = util::with_pool(threads, [&](util::ThreadPool&
                                                              pool) {
    return util::parallel_map_reduce(
        pool, 0, limit, enumeration_grain(limit), EnumerationTotals{},
        [&](std::uint64_t a_begin, std::uint64_t a_end) {
          EnumerationShard shard;
          for (std::uint64_t a = a_begin; a < a_end; ++a) {
            for (std::uint64_t b = 0; b < limit; ++b) {
              double weight_ab = 1.0;
              for (std::size_t i = 0; i < n; ++i) {
                const std::size_t idx =
                    (((a >> i) & 1ULL) << 1) | ((b >> i) & 1ULL);
                weight_ab *= profile.joint(i)[idx];
              }
              if (weight_ab == 0.0) continue;
              for (int cin = 0; cin < 2; ++cin) {
                const double weight =
                    weight_ab *
                    (cin != 0 ? profile.p_cin() : 1.0 - profile.p_cin());
                if (weight == 0.0) continue;
                accumulate_case(chain, a, b, cin != 0, weight, n, shard);
              }
            }
          }
          return shard;
        },
        [](EnumerationTotals& acc, EnumerationShard&& shard) {
          merge_shard(acc, std::move(shard));
        },
        &timings);
  });

  return report_from(std::move(totals), limit * limit * 2, std::move(timings));
}

}  // namespace sealpaa::baseline

// Weighted-exhaustive ground truth.
//
// For arbitrary per-bit input probabilities the error probability can be
// computed *exactly* by enumerating all 2^(2N+1) input assignments and
// summing each assignment's probability.  This is the strongest oracle
// available (the paper used 1M-sample Monte Carlo for this scenario) but
// costs O(4^N); it is the cross-validation reference for the O(N)
// recursive method up to N ≈ 12.
#pragma once

#include <cstdint>
#include <map>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/multibit/joint_profile.hpp"
#include "sealpaa/sim/kernel.hpp"
#include "sealpaa/util/parallel.hpp"

namespace sealpaa::baseline {

/// Exact probabilities and error moments from full enumeration.
struct ExhaustiveReport {
  std::uint64_t assignments = 0;   // 2^(2N+1)
  double p_stage_success = 0.0;    // paper's success event
  double p_value_correct = 0.0;    // numeric output incl. carry-out correct
  double p_sum_bits_correct = 0.0; // numeric sum bits correct (carry ignored)
  double mean_error = 0.0;         // E[approx - exact]
  double mean_abs_error = 0.0;     // mean error distance (MED)
  double mean_squared_error = 0.0; // E[(approx - exact)^2]
  std::int64_t worst_case_error = 0;  // max |approx - exact| over support
  /// Full signed-error distribution: error value -> probability.
  std::map<std::int64_t, double> error_distribution;
  sim::Kernel kernel = sim::Kernel::kBitSliced;  // evaluation backend used
  std::uint64_t lane_batches = 0;  // 64-lane kernel passes (bit-sliced)
  std::uint64_t masked_lanes = 0;  // dead lanes in partial batches
  util::ShardTimings shard_timings;   // per-shard breakdown
};

class WeightedExhaustive {
 public:
  /// Enumerates all assignments, sharded along the `a` operand over a
  /// thread pool (`threads == 0` → the shared pool).  Shard boundaries
  /// and the ordered Kahan reduction depend only on the width, so every
  /// thread count produces a bit-identical report — and so does either
  /// `kernel` (the bit-sliced chain evaluation feeds the exact same
  /// Kahan-add sequence).  Throws std::invalid_argument when the widths
  /// mismatch or the width exceeds `max_width` (guard against
  /// accidentally requesting a 2^41-case enumeration).
  [[nodiscard]] static ExhaustiveReport analyze(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile, std::size_t max_width = 14,
      unsigned threads = 0, sim::Kernel kernel = sim::Kernel::kBitSliced);

  /// Ground truth for correlated-operand profiles (validates
  /// analysis::CorrelatedAnalyzer).  Same sharding contract as analyze().
  [[nodiscard]] static ExhaustiveReport analyze_joint(
      const multibit::AdderChain& chain,
      const multibit::JointInputProfile& profile,
      std::size_t max_width = 14, unsigned threads = 0,
      sim::Kernel kernel = sim::Kernel::kBitSliced);
};

}  // namespace sealpaa::baseline

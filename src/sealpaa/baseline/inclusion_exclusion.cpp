#include "sealpaa/baseline/inclusion_exclusion.hpp"

#include <cmath>
#include <stdexcept>

#include "sealpaa/prob/kahan.hpp"

namespace sealpaa::baseline {

InclusionExclusionCost inclusion_exclusion_cost(int stages) {
  const double k = stages;
  InclusionExclusionCost cost;
  cost.terms = std::pow(2.0, k) - 1.0;
  cost.multiplications = k * std::pow(2.0, k - 1.0) - k;
  cost.additions = std::pow(2.0, k) - 2.0;
  cost.memory_units = std::pow(2.0, k + 1.0) - 1.0;
  return cost;
}

namespace {

// P(∩_{i∈S} E_i): carry-distribution sweep over the *approximate* carry
// chain where every stage in S is restricted to its error rows.
double joint_failure_probability(const multibit::AdderChain& chain,
                                 const multibit::InputProfile& profile,
                                 std::uint64_t subset,
                                 util::OpCounter* counter) {
  double mass0 = 1.0 - profile.p_cin();
  double mass1 = profile.p_cin();
  const std::size_t n = chain.width();
  for (std::size_t i = 0; i < n; ++i) {
    const adders::AdderCell& cell = chain.stage(i);
    const bool must_fail = ((subset >> i) & 1ULL) != 0;
    const double pa = profile.p_a(i);
    const double pb = profile.p_b(i);
    const double ab[4] = {(1.0 - pa) * (1.0 - pb), (1.0 - pa) * pb,
                          pa * (1.0 - pb), pa * pb};
    if (counter != nullptr) counter->count_mul(4);
    double next0 = 0.0;
    double next1 = 0.0;
    for (int c = 0; c < 2; ++c) {
      const double mass = c != 0 ? mass1 : mass0;
      if (mass == 0.0) continue;
      for (int abi = 0; abi < 4; ++abi) {
        const bool a = (abi & 2) != 0;
        const bool b = (abi & 1) != 0;
        const std::size_t row =
            adders::AdderCell::row_index(a, b, c != 0);
        if (must_fail && cell.row_is_success(row)) continue;
        const double w = mass * ab[abi];
        if (counter != nullptr) {
          counter->count_mul();
          counter->count_add();
        }
        if (cell.rows()[row].carry) {
          next1 += w;
        } else {
          next0 += w;
        }
      }
    }
    mass0 = next0;
    mass1 = next1;
  }
  return mass0 + mass1;
}

}  // namespace

InclusionExclusionResult InclusionExclusionAnalyzer::analyze(
    const multibit::AdderChain& chain, const multibit::InputProfile& profile,
    std::size_t max_width, util::OpCounter* counter) {
  if (chain.width() != profile.width()) {
    throw std::invalid_argument(
        "InclusionExclusionAnalyzer: chain and profile widths differ");
  }
  const std::size_t n = chain.width();
  if (n > max_width) {
    throw std::invalid_argument(
        "InclusionExclusionAnalyzer: width " + std::to_string(n) +
        " exceeds the subset-enumeration guard (" +
        std::to_string(max_width) + ")");
  }

  InclusionExclusionResult result;
  prob::KahanSum p_union;
  const std::uint64_t subsets = 1ULL << n;
  for (std::uint64_t subset = 1; subset < subsets; ++subset) {
    const double joint =
        joint_failure_probability(chain, profile, subset, counter);
    const int size = static_cast<int>(__builtin_popcountll(subset));
    p_union.add((size % 2 == 1) ? joint : -joint);
    if (counter != nullptr) {
      counter->count_add();
      counter->note_live(2 + subsets);  // running sum + carry pair + terms
    }
    ++result.terms_evaluated;
  }
  result.p_error = p_union.value();
  result.p_success = 1.0 - result.p_error;
  return result;
}

}  // namespace sealpaa::baseline

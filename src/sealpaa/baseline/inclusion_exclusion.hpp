// The traditional analytical baseline (paper §3): error probability via
// the principle of inclusion-exclusion over per-stage error events,
//   P(∪ E_i) = Σ_{∅≠S⊆stages} (-1)^{|S|+1} P(∩_{i∈S} E_i),
// plus the closed-form cost model behind the paper's Table 3.
//
// Each joint probability P(∩ E_i) is computed by a carry-distribution
// sweep with "must fail" row filters at the stages in S, so a full run
// enumerates all 2^k - 1 subsets — the exponential blow-up the paper's
// recursion eliminates.  Kept as an executable witness of that blow-up
// and as an independent oracle (1 - P(∪E_i) must equal the recursive
// P(Succ)).
#pragma once

#include <cstdint>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/multibit/input_profile.hpp"
#include "sealpaa/util/op_counter.hpp"

namespace sealpaa::baseline {

/// Closed-form cost model of the traditional analysis (Table 3).
/// Small-k rows of the paper's table match these exactly; the paper's
/// large-k rows for Terms/Additions carry unit typos (10^9 printed where
/// the formulas give 10^6) — see EXPERIMENTS.md.
struct InclusionExclusionCost {
  double terms = 0.0;            // 2^k - 1 nonempty subsets
  double multiplications = 0.0;  // k*2^(k-1) - k  (Σ_{s>=2} s*C(k,s))
  double additions = 0.0;        // 2^k - 2 (combining all terms)
  double memory_units = 0.0;     // 2^(k+1) - 1 (Σ_{i=1..k} 2^i terms + partials)
};
[[nodiscard]] InclusionExclusionCost inclusion_exclusion_cost(int stages);

/// Result of actually running the inclusion-exclusion analysis.
struct InclusionExclusionResult {
  double p_error = 0.0;
  double p_success = 0.0;
  std::uint64_t terms_evaluated = 0;
};

class InclusionExclusionAnalyzer {
 public:
  /// Evaluates P(error) over all 2^k - 1 subsets.  Guarded by
  /// `max_width` (default 20 ≈ one million subsets).  Optionally counts
  /// arithmetic into `counter`.
  [[nodiscard]] static InclusionExclusionResult analyze(
      const multibit::AdderChain& chain,
      const multibit::InputProfile& profile, std::size_t max_width = 20,
      util::OpCounter* counter = nullptr);
};

}  // namespace sealpaa::baseline

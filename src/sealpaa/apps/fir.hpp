// Fixed-point FIR filtering with approximate accumulation — the DSP
// use-case from the paper's introduction ("building blocks of digital
// signal processors").  Multiplications stay exact (the paper studies
// adders); every accumulation runs through a configurable adder chain in
// W-bit two's-complement arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/prob/rng.hpp"

namespace sealpaa::apps {

/// A direct-form FIR filter over W-bit two's-complement samples.
class FirFilter {
 public:
  /// `coefficients` are integer taps; `width` is the datapath width in
  /// bits (accumulations wrap modulo 2^width, like the hardware would).
  FirFilter(std::vector<int> coefficients, std::size_t width);

  /// Runs the filter with exact accumulation.
  [[nodiscard]] std::vector<std::int64_t> run_exact(
      const std::vector<std::int64_t>& signal) const;

  /// Runs the filter accumulating through `chain` (width must match).
  [[nodiscard]] std::vector<std::int64_t> run_approx(
      const std::vector<std::int64_t>& signal,
      const multibit::AdderChain& chain) const;

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] const std::vector<int>& coefficients() const noexcept {
    return coefficients_;
  }

 private:
  [[nodiscard]] std::int64_t to_signed(std::uint64_t value) const noexcept;

  std::vector<int> coefficients_;
  std::size_t width_;
};

/// Quantized sine test signal with optional additive uniform noise.
[[nodiscard]] std::vector<std::int64_t> make_sine_signal(
    std::size_t samples, double amplitude, double frequency,
    double noise_amplitude, prob::Xoshiro256StarStar& rng);

/// Signal-to-noise ratio (dB) of `test` against reference `ref`
/// (infinite when identical).
[[nodiscard]] double snr_db(const std::vector<std::int64_t>& ref,
                            const std::vector<std::int64_t>& test);

}  // namespace sealpaa::apps

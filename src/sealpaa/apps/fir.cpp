#include "sealpaa/apps/fir.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace sealpaa::apps {

FirFilter::FirFilter(std::vector<int> coefficients, std::size_t width)
    : coefficients_(std::move(coefficients)), width_(width) {
  if (coefficients_.empty()) {
    throw std::invalid_argument("FirFilter: need at least one tap");
  }
  if (width_ < 2 || width_ > 62) {
    throw std::invalid_argument("FirFilter: width must be in [2, 62]");
  }
}

std::int64_t FirFilter::to_signed(std::uint64_t value) const noexcept {
  const std::uint64_t sign_bit = 1ULL << (width_ - 1);
  const std::uint64_t masked = multibit::mask_width(value, width_);
  if ((masked & sign_bit) != 0) {
    return static_cast<std::int64_t>(masked) -
           static_cast<std::int64_t>(1ULL << width_);
  }
  return static_cast<std::int64_t>(masked);
}

std::vector<std::int64_t> FirFilter::run_exact(
    const std::vector<std::int64_t>& signal) const {
  std::vector<std::int64_t> out(signal.size(), 0);
  for (std::size_t n = 0; n < signal.size(); ++n) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < coefficients_.size() && k <= n; ++k) {
      const std::int64_t product =
          static_cast<std::int64_t>(coefficients_[k]) * signal[n - k];
      acc = multibit::mask_width(acc + static_cast<std::uint64_t>(product),
                                 width_);
    }
    out[n] = to_signed(acc);
  }
  return out;
}

std::vector<std::int64_t> FirFilter::run_approx(
    const std::vector<std::int64_t>& signal,
    const multibit::AdderChain& chain) const {
  if (chain.width() != width_) {
    throw std::invalid_argument(
        "FirFilter::run_approx: chain width must match the datapath width");
  }
  std::vector<std::int64_t> out(signal.size(), 0);
  for (std::size_t n = 0; n < signal.size(); ++n) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < coefficients_.size() && k <= n; ++k) {
      const std::int64_t product =
          static_cast<std::int64_t>(coefficients_[k]) * signal[n - k];
      const std::uint64_t addend = multibit::mask_width(
          static_cast<std::uint64_t>(product), width_);
      acc = chain.evaluate(acc, addend, false).sum_bits;  // mod 2^W
    }
    out[n] = to_signed(acc);
  }
  return out;
}

std::vector<std::int64_t> make_sine_signal(std::size_t samples,
                                           double amplitude, double frequency,
                                           double noise_amplitude,
                                           prob::Xoshiro256StarStar& rng) {
  std::vector<std::int64_t> signal(samples, 0);
  for (std::size_t n = 0; n < samples; ++n) {
    const double phase =
        2.0 * std::numbers::pi * frequency * static_cast<double>(n);
    double value = amplitude * std::sin(phase);
    value += noise_amplitude * (2.0 * rng.uniform01() - 1.0);
    signal[n] = static_cast<std::int64_t>(std::llround(value));
  }
  return signal;
}

double snr_db(const std::vector<std::int64_t>& ref,
              const std::vector<std::int64_t>& test) {
  if (ref.size() != test.size()) {
    throw std::invalid_argument("snr_db: size mismatch");
  }
  double signal_power = 0.0;
  double noise_power = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double s = static_cast<double>(ref[i]);
    const double d = s - static_cast<double>(test[i]);
    signal_power += s * s;
    noise_power += d * d;
  }
  if (noise_power == 0.0) return std::numeric_limits<double>::infinity();
  if (signal_power == 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal_power / noise_power);
}

}  // namespace sealpaa::apps

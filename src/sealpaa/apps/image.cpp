#include "sealpaa/apps/image.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace sealpaa::apps {

Image::Image(std::size_t width, std::size_t height)
    : width_(width), height_(height), pixels_(width * height, 0) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Image: dimensions must be nonzero");
  }
}

std::uint8_t Image::at(std::size_t x, std::size_t y) const {
  return pixels_.at(y * width_ + x);
}

void Image::set(std::size_t x, std::size_t y, std::uint8_t value) {
  pixels_.at(y * width_ + x) = value;
}

Image Image::gradient(std::size_t width, std::size_t height) {
  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      image.set(x, y, static_cast<std::uint8_t>(255 * x / (width - 1 + (width == 1))));
    }
  }
  return image;
}

Image Image::checkerboard(std::size_t width, std::size_t height,
                          std::size_t cell) {
  if (cell == 0) throw std::invalid_argument("checkerboard: cell size 0");
  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const bool on = ((x / cell) + (y / cell)) % 2 == 0;
      image.set(x, y, on ? 220 : 35);
    }
  }
  return image;
}

Image Image::blobs(std::size_t width, std::size_t height, int count,
                   prob::Xoshiro256StarStar& rng) {
  Image image(width, height);
  std::vector<double> field(width * height, 0.0);
  for (int blob = 0; blob < count; ++blob) {
    const double cx = rng.uniform01() * static_cast<double>(width);
    const double cy = rng.uniform01() * static_cast<double>(height);
    const double sigma =
        (0.05 + 0.15 * rng.uniform01()) * static_cast<double>(width);
    const double amplitude = 60.0 + 195.0 * rng.uniform01();
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        field[y * width + x] +=
            amplitude * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      }
    }
  }
  for (std::size_t i = 0; i < field.size(); ++i) {
    image.pixels_[i] = static_cast<std::uint8_t>(
        std::min(255.0, std::max(0.0, field[i])));
  }
  return image;
}

void Image::write_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

double image_mse(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("image_mse: size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const double d = static_cast<double>(a.pixels()[i]) -
                     static_cast<double>(b.pixels()[i]);
    total += d * d;
  }
  return total / static_cast<double>(a.pixels().size());
}

double image_psnr(const Image& a, const Image& b) {
  const double mse = image_mse(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

Image approx_blend(const Image& a, const Image& b,
                   const multibit::AdderChain& chain) {
  if (chain.width() != 8) {
    throw std::invalid_argument("approx_blend: chain width must be 8");
  }
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("approx_blend: size mismatch");
  }
  Image out(a.width(), a.height());
  for (std::size_t y = 0; y < a.height(); ++y) {
    for (std::size_t x = 0; x < a.width(); ++x) {
      const multibit::AddResult sum =
          chain.evaluate(a.at(x, y), b.at(x, y), false);
      out.set(x, y, static_cast<std::uint8_t>(sum.value(8) >> 1));
    }
  }
  return out;
}

Image exact_blend(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("exact_blend: size mismatch");
  }
  Image out(a.width(), a.height());
  for (std::size_t y = 0; y < a.height(); ++y) {
    for (std::size_t x = 0; x < a.width(); ++x) {
      const unsigned total =
          static_cast<unsigned>(a.at(x, y)) + static_cast<unsigned>(b.at(x, y));
      out.set(x, y, static_cast<std::uint8_t>(total >> 1));
    }
  }
  return out;
}

}  // namespace sealpaa::apps

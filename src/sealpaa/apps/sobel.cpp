#include "sealpaa/apps/sobel.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace sealpaa::apps {

namespace {

// Sobel gradients at (x, y); zero on the 1-pixel border.
struct Gradients {
  int gx = 0;
  int gy = 0;
};

Gradients gradients_at(const Image& image, std::size_t x, std::size_t y) {
  if (x == 0 || y == 0 || x + 1 >= image.width() || y + 1 >= image.height()) {
    return {};
  }
  const auto p = [&](std::size_t dx, std::size_t dy) {
    return static_cast<int>(image.at(x + dx - 1, y + dy - 1));
  };
  Gradients g;
  g.gx = (p(2, 0) + 2 * p(2, 1) + p(2, 2)) -
         (p(0, 0) + 2 * p(0, 1) + p(0, 2));
  g.gy = (p(0, 2) + 2 * p(1, 2) + p(2, 2)) -
         (p(0, 0) + 2 * p(1, 0) + p(2, 0));
  return g;
}

std::uint8_t clamp255(std::uint64_t value) {
  return static_cast<std::uint8_t>(value > 255 ? 255 : value);
}

}  // namespace

Image sobel_magnitude_exact(const Image& image) {
  Image out(image.width(), image.height());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const Gradients g = gradients_at(image, x, y);
      const std::uint64_t magnitude = static_cast<std::uint64_t>(
          std::abs(g.gx) + std::abs(g.gy));
      out.set(x, y, clamp255(magnitude));
    }
  }
  return out;
}

Image sobel_magnitude(const Image& image, const multibit::AdderChain& chain) {
  if (chain.width() != 12) {
    throw std::invalid_argument("sobel_magnitude: chain width must be 12");
  }
  Image out(image.width(), image.height());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      const Gradients g = gradients_at(image, x, y);
      const std::uint64_t ax = static_cast<std::uint64_t>(std::abs(g.gx));
      const std::uint64_t ay = static_cast<std::uint64_t>(std::abs(g.gy));
      const std::uint64_t magnitude = chain.evaluate(ax, ay, false).value(12);
      out.set(x, y, clamp255(magnitude));
    }
  }
  return out;
}

}  // namespace sealpaa::apps

// Synthetic grayscale-image substrate for the image-processing use-case
// the paper's introduction motivates (error-resilient media workloads).
//
// The paper's domain (and the authors' original release) has no bundled
// image data, so images are generated procedurally (gradients, checker
// patterns, seeded noise blobs); quality of approximate pixel arithmetic
// is then measured with the standard PSNR metric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sealpaa/multibit/chain.hpp"
#include "sealpaa/prob/rng.hpp"

namespace sealpaa::apps {

/// An 8-bit grayscale image.
class Image {
 public:
  Image(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, std::uint8_t value);

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }

  /// Horizontal luminance ramp.
  [[nodiscard]] static Image gradient(std::size_t width, std::size_t height);
  /// Checkerboard with `cell`-pixel squares.
  [[nodiscard]] static Image checkerboard(std::size_t width,
                                          std::size_t height,
                                          std::size_t cell);
  /// Smooth random blobs (sum of seeded Gaussian bumps).
  [[nodiscard]] static Image blobs(std::size_t width, std::size_t height,
                                   int count, prob::Xoshiro256StarStar& rng);

  /// Writes a binary PGM (P5).  Throws std::runtime_error on I/O failure.
  void write_pgm(const std::string& path) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

/// Mean squared pixel error between equally sized images.
[[nodiscard]] double image_mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (infinity when identical).
[[nodiscard]] double image_psnr(const Image& a, const Image& b);

/// Blends two images as (a + b) / 2 where the 8-bit addition runs on the
/// given adder chain (chain width must be 8); the 9th bit comes from the
/// chain's carry-out.  This is the classic image-addition kernel used to
/// demo approximate adders.
[[nodiscard]] Image approx_blend(const Image& a, const Image& b,
                                 const multibit::AdderChain& chain);

/// Exact reference blend.
[[nodiscard]] Image exact_blend(const Image& a, const Image& b);

}  // namespace sealpaa::apps

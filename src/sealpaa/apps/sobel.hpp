// Sobel edge detection with approximate addition — a second
// image-processing kernel (beyond blending) for the error-resilience
// story: gradient magnitudes tolerate LSB noise well.
#pragma once

#include "sealpaa/apps/image.hpp"
#include "sealpaa/multibit/chain.hpp"

namespace sealpaa::apps {

/// Exact Sobel gradient magnitude, |Gx| + |Gy| clamped to 255.
[[nodiscard]] Image sobel_magnitude_exact(const Image& image);

/// Sobel gradient magnitude where the final |Gx| + |Gy| addition runs on
/// `chain` (width must be 12: |Gx|, |Gy| <= 1020 each, so the sum needs
/// 11 bits plus headroom).  The convolutions themselves stay exact — the
/// kernel's adds-of-interest are the magnitude accumulation, matching
/// how approximate adders are deployed in gradient hardware.
[[nodiscard]] Image sobel_magnitude(const Image& image,
                                    const multibit::AdderChain& chain);

}  // namespace sealpaa::apps
